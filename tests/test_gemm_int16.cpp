// The int16 integer GEMM micro-kernel path (core/gemm_kernels.hpp):
//  * gemm_i16_tiled_pa against an int64-accumulation reference across the
//    same geometry sweep as the float kernels (full tiles, ragged rows,
//    ragged cols, panel boundaries, odd k);
//  * ISA parity — the AVX2 madd kernel against the scalar fallback must
//    be BITWISE identical, including on accumulators that wrap mod 2^32
//    (both sides use defined wraparound arithmetic);
//  * thread-count invariance — the panel x row-block split never changes
//    any tile's summation order, so 1/2/8 workers agree bitwise;
//  * saturation edges — operands at the int16 rails accumulate exactly
//    while the true sum fits int32;
//  * the SIMD quantize kernels (qdq_f32, quant_f32_i16) against the
//    scalar fallback bitwise, and against Fixed's round-half-away
//    semantics including NaN/inf/-0.0 specials.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/gemm_kernels.hpp"
#include "fixed/fixed_tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace odenet::core;
namespace ou = odenet::util;
namespace of = odenet::fixed;

namespace {

std::vector<std::int16_t> random_i16(int rows, int cols, int mag,
                                     ou::Rng& rng) {
  std::vector<std::int16_t> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) {
    v = static_cast<std::int16_t>(
        std::lround(rng.normal(0.0, mag / 3.0)));
  }
  return m;
}

/// C[m,n] = A[m,k] * B[k,n] accumulated in int64, then truncated mod 2^32
/// — the kernel's exact contract (wraparound included).
std::vector<std::int32_t> reference_gemm_i16(
    const std::vector<std::int16_t>& a, const std::vector<std::int16_t>& b,
    int m, int k, int n) {
  std::vector<std::int32_t> c(static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::uint32_t acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a[i * k + p]) * b[p * n + j]);
      }
      c[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int32_t>(acc);
    }
  }
  return c;
}

struct Shape {
  int m, k, n;
  std::string str() const {
    return "m=" + std::to_string(m) + " k=" + std::to_string(k) +
           " n=" + std::to_string(n);
  }
};

/// Same sweep as the float suite: full tiles, ragged rows (m % 4), ragged
/// cols (n % 16), odd k (the phantom zero tap), panel boundaries around
/// the 256-wide packing panel and a long-n batched-lowering shape.
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 7},     {4, 8, 16},   {5, 16, 17},  {8, 9, 32},
    {12, 64, 48}, {17, 27, 100}, {20, 36, 255}, {16, 32, 256}, {7, 33, 257},
    {64, 36, 585}, {100, 7, 130},
};

/// RAII scalar-forcing so a failing EXPECT cannot leak the override.
struct ForceScalar {
  explicit ForceScalar(bool on) { gemm_force_scalar(on); }
  ~ForceScalar() { gemm_force_scalar(false); }
};

/// RAII kernel-pool + parallel-threshold override.
struct PoolOverride {
  explicit PoolOverride(ou::ThreadPool* pool, std::size_t min_flops) {
    set_kernel_pool(pool);
    gemm_set_parallel_min_flops(min_flops);
  }
  ~PoolOverride() {
    set_kernel_pool(nullptr);
    gemm_set_parallel_min_flops(0);
  }
};

void run_i16_sweep(ou::Rng& rng) {
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(s.str());
    // |acc| <= k * 300^2 < 5.3e7 for the largest k — no wrap, so the
    // int64-truncated reference equals plain integer arithmetic.
    const auto a = random_i16(s.m, s.k, 300, rng);
    const auto b = random_i16(s.k, s.n, 300, rng);
    const auto want = reference_gemm_i16(a, b, s.m, s.k, s.n);

    PackedGemmA16 pa;
    pack_gemm_a_i16(a.data(), s.m, s.k, pa);
    std::vector<std::int32_t> c(want.size(), -7);
    gemm_i16_tiled_pa(pa, b.data(), c.data(), s.n, false);
    EXPECT_EQ(0, std::memcmp(c.data(), want.data(),
                             want.size() * sizeof(std::int32_t)))
        << "gemm_i16_tiled_pa";

    // accumulate=true adds onto the existing C (mod 2^32).
    std::vector<std::int32_t> acc(want.size(), 15);
    gemm_i16_tiled_pa(pa, b.data(), acc.data(), s.n, true);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(acc[i], want[i] + 15) << "accumulate at " << i;
    }
  }
}

}  // namespace

TEST(GemmInt16, TiledMatchesInt64ReferenceAcrossGeometries) {
  ou::Rng rng(21);
  run_i16_sweep(rng);
}

TEST(GemmInt16, ScalarFallbackMatchesReferenceAcrossGeometries) {
  ForceScalar forced(true);
  ou::Rng rng(22);
  run_i16_sweep(rng);
}

TEST(GemmInt16, IsaParityIsBitwise) {
  if (!gemm_avx2_usable()) {
    GTEST_SKIP() << "AVX2+FMA kernels not usable on this host";
  }
  ou::Rng rng(23);
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(s.str());
    // Full-rail magnitudes: lanes may wrap mod 2^32; both ISAs must wrap
    // identically (the wraparound IS the contract, not UB).
    const auto a = random_i16(s.m, s.k, 20000, rng);
    const auto b = random_i16(s.k, s.n, 20000, rng);
    PackedGemmA16 pa;
    pack_gemm_a_i16(a.data(), s.m, s.k, pa);
    const std::size_t cn = static_cast<std::size_t>(s.m) * s.n;

    std::vector<std::int32_t> vec(cn, -1), sca(cn, -2);
    gemm_i16_tiled_pa(pa, b.data(), vec.data(), s.n, false);
    {
      ForceScalar forced(true);
      gemm_i16_tiled_pa(pa, b.data(), sca.data(), s.n, false);
    }
    EXPECT_EQ(0, std::memcmp(vec.data(), sca.data(),
                             cn * sizeof(std::int32_t)))
        << "i16 isa parity";
  }
}

TEST(GemmInt16, ThreadCountInvarianceIsBitwise) {
  // Each 4x16 tile's k loop runs entirely on one worker and integer
  // addition commutes mod 2^32, so the panel split is pure work division:
  // 1, 2 and 8 workers produce BITWISE identical accumulators (threshold
  // forced to 1 flop so even the smallest shapes take the parallel path).
  ou::Rng rng(24);
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(s.str());
    const auto a = random_i16(s.m, s.k, 300, rng);
    const auto b = random_i16(s.k, s.n, 300, rng);
    const std::size_t cn = static_cast<std::size_t>(s.m) * s.n;

    std::vector<std::int32_t> base(cn);
    {
      ou::ThreadPool one(1);
      PoolOverride ov(&one, 1);
      PackedGemmA16 pa;
      pack_gemm_a_i16(a.data(), s.m, s.k, pa);
      gemm_i16_tiled_pa(pa, b.data(), base.data(), s.n, false);
    }
    for (std::size_t workers : {2u, 8u}) {
      ou::ThreadPool pool(workers);
      PoolOverride ov(&pool, 1);
      std::vector<std::int32_t> got(cn, -3);
      PackedGemmA16 pa;
      pack_gemm_a_i16(a.data(), s.m, s.k, pa);
      gemm_i16_tiled_pa(pa, b.data(), got.data(), s.n, false);
      EXPECT_EQ(0, std::memcmp(got.data(), base.data(),
                               cn * sizeof(std::int32_t)))
          << "gemm_i16_tiled_pa differs at " << workers << " workers";
    }
  }
}

TEST(GemmInt16, SaturationRailOperandsAccumulateExactly) {
  // Operands parked at the int16 rails: 2 * 32767^2 and mixed-sign rail
  // products all fit int32, so the kernel must return them exactly. The
  // executor's weight envelope guarantees real models never wrap; this
  // pins the arithmetic at the extreme the envelope allows.
  const int m = 5, k = 2, n = 17;  // ragged row + col edges included
  std::vector<std::int16_t> a(static_cast<std::size_t>(m) * k);
  std::vector<std::int16_t> b(static_cast<std::size_t>(k) * n);
  const std::int16_t rails[] = {32767, -32768, -32767, 1};
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = rails[i % 4];
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rails[(i + 1) % 4];
  const auto want = reference_gemm_i16(a, b, m, k, n);
  // Sanity: this fixture stays within int32 (no wrap in the reference).
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int64_t wide = 0;
      for (int p = 0; p < k; ++p) {
        wide += static_cast<std::int64_t>(a[i * k + p]) * b[p * n + j];
      }
      ASSERT_EQ(wide, want[static_cast<std::size_t>(i) * n + j]);
    }
  }

  PackedGemmA16 pa;
  pack_gemm_a_i16(a.data(), m, k, pa);
  std::vector<std::int32_t> c(want.size());
  gemm_i16_tiled_pa(pa, b.data(), c.data(), n, false);
  EXPECT_EQ(0, std::memcmp(c.data(), want.data(),
                           want.size() * sizeof(std::int32_t)));
  if (gemm_avx2_usable()) {
    ForceScalar forced(true);
    std::vector<std::int32_t> sca(want.size());
    gemm_i16_tiled_pa(pa, b.data(), sca.data(), n, false);
    EXPECT_EQ(0, std::memcmp(c.data(), sca.data(),
                             want.size() * sizeof(std::int32_t)));
  }
}

TEST(GemmInt16, PackedPanelsZeroPadEdges) {
  // m=3 (one ragged row), k=5 (phantom odd tap): every pad slot is zero
  // and every live slot lands at [p][i][s] = A[4t+i][2p+s].
  const int m = 3, k = 5;
  std::vector<std::int16_t> a(static_cast<std::size_t>(m) * k);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int16_t>(100 + i);
  }
  PackedGemmA16 pa;
  pack_gemm_a_i16(a.data(), m, k, pa);
  ASSERT_EQ(pa.kpairs(), 3);
  ASSERT_EQ(pa.data.size(), static_cast<std::size_t>(1) * 3 * 4 * 2);
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 4; ++i) {
      for (int s = 0; s < 2; ++s) {
        const std::int16_t got = pa.data[(p * 4 + i) * 2 + s];
        const int row = i, col = 2 * p + s;
        if (row >= m || col >= k) {
          EXPECT_EQ(got, 0) << "pad at p=" << p << " i=" << i << " s=" << s;
        } else {
          EXPECT_EQ(got, a[row * k + col]);
        }
      }
    }
  }

  PackedGemmB16 pb;
  pack_gemm_b_i16(a.data(), /*k=*/m, /*n=*/k, pb);  // 3x5 as B
  ASSERT_EQ(pb.kpairs(), 2);
  ASSERT_EQ(pb.data.size(), static_cast<std::size_t>(1) * 2 * 16 * 2);
  for (int p = 0; p < 2; ++p) {
    for (int j = 0; j < 16; ++j) {
      for (int s = 0; s < 2; ++s) {
        const std::int16_t got = pb.data[(p * 16 + j) * 2 + s];
        const int row = 2 * p + s, col = j;
        if (row >= m || col >= k) {
          EXPECT_EQ(got, 0) << "pad at p=" << p << " j=" << j << " s=" << s;
        } else {
          EXPECT_EQ(got, a[row * k + col]);
        }
      }
    }
  }
}

TEST(GemmInt16, QuantizeKernelsAreIsaBitwiseAndHandleSpecials) {
  const GemmKernels& k = active_gemm_kernels();
  ASSERT_NE(k.tile4x16_i16, nullptr);
  ASSERT_NE(k.qdq_f32, nullptr);
  ASSERT_NE(k.quant_f32_i16, nullptr);

  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> src = {0.0f,   -0.0f,  1.0f,     -1.0f,  0.3333f,
                            -0.3333f, 1e30f, -1e30f,  inf,    -inf,
                            nan,    7.9999f, -7.9999f, 0.5f / 4096.0f,
                            1.5f / 4096.0f, -1.5f / 4096.0f};
  ou::Rng rng(25);
  for (int i = 0; i < 333; ++i) {  // odd count: SIMD tail path covered
    src.push_back(static_cast<float>(rng.normal(0.0, 4.0)));
  }

  for (int frac : {8, 12, 15}) {
    SCOPED_TRACE("frac=" + std::to_string(frac));
    std::vector<std::int16_t> qv(src.size()), qs(src.size());
    k.quant_f32_i16(src.data(), qv.data(), src.size(), frac);
    {
      ForceScalar forced(true);
      active_gemm_kernels().quant_f32_i16(src.data(), qs.data(), src.size(),
                                          frac);
    }
    EXPECT_EQ(0, std::memcmp(qv.data(), qs.data(),
                             qv.size() * sizeof(std::int16_t)));
    // Specials: NaN -> 0, +-inf/huge -> rails.
    EXPECT_EQ(qs[8], 32767);   // +inf
    EXPECT_EQ(qs[9], -32768);  // -inf
    EXPECT_EQ(qs[10], 0);      // NaN
    EXPECT_EQ(qs[6], 32767);   // +huge
    EXPECT_EQ(qs[7], -32768);  // -huge

    std::vector<float> dv(src), ds(src);
    k.qdq_f32(dv.data(), dv.size(), frac);
    {
      ForceScalar forced(true);
      active_gemm_kernels().qdq_f32(ds.data(), ds.size(), frac);
    }
    EXPECT_EQ(0,
              std::memcmp(dv.data(), ds.data(), dv.size() * sizeof(float)));
    // qdq matches the Fixed scalar reference value-for-value (including
    // -0.0 normalization: the result compares bitwise equal to +0.0).
    for (std::size_t i = 0; i < src.size(); ++i) {
      const float want = of::qdq_value(src[i], frac);
      ASSERT_EQ(ds[i], want) << "qdq mismatch at " << i << " v=" << src[i];
    }
    const float zero = 0.0f;
    EXPECT_EQ(0, std::memcmp(&ds[1], &zero, sizeof(float)));  // -0.0 -> +0.0
  }

  // requant_i32: the AVX2 double-domain shift against the int64 scalar,
  // bitwise, across shifts including 0 (passthrough) and accumulators at
  // the int32 rails.
  std::vector<std::int32_t> accs = {0,          1,           -1,
                                    24,         -24,         23,
                                    2147483647, -2147483647, -2147483648};
  for (int i = 0; i < 500; ++i) {
    accs.push_back(static_cast<std::int32_t>(
        std::llround(rng.normal(0.0, 1e8))));
  }
  for (int shift : {0, 4, 8, 27}) {
    SCOPED_TRACE("shift=" + std::to_string(shift));
    std::vector<float> rv(accs.size()), rs(accs.size());
    k.requant_i32(accs.data(), rv.data(), accs.size(), shift, 20);
    {
      ForceScalar forced(true);
      active_gemm_kernels().requant_i32(accs.data(), rs.data(), accs.size(),
                                        shift, 20);
    }
    EXPECT_EQ(0,
              std::memcmp(rv.data(), rs.data(), rv.size() * sizeof(float)));
  }

  // Round-half-away-from-zero at the exact midpoint: 1.5 ulp of Q12 is
  // 1.5/4096, which must round to raw 2, not the round-to-even 2 vs the
  // round-to-zero 1 — and symmetrically for the negative midpoint.
  std::int16_t q[2];
  const float mids[2] = {1.5f / 4096.0f, -1.5f / 4096.0f};
  active_gemm_kernels().quant_f32_i16(mids, q, 2, 12);
  EXPECT_EQ(q[0], 2);
  EXPECT_EQ(q[1], -2);
}

TEST(GemmInt16, MaxAbsKernelIsIsaBitwiseAndExact) {
  ou::Rng rng(31);
  // Odd length exercises the SIMD tail; the winner sits in the tail so a
  // dropped remainder would be caught.
  std::vector<float> src(8 * 123 + 5);
  for (auto& v : src) v = static_cast<float>(rng.normal(0.0, 3.0));
  src[src.size() - 2] = -97.5f;  // |max| is a negative tail element

  float ref = 0.0f;
  for (float v : src) ref = std::max(ref, std::fabs(v));
  ASSERT_EQ(ref, 97.5f);

  const float vec = active_gemm_kernels().max_abs_f32(src.data(), src.size());
  float sca;
  {
    ForceScalar forced(true);
    sca = active_gemm_kernels().max_abs_f32(src.data(), src.size());
  }
  EXPECT_EQ(vec, ref);
  EXPECT_EQ(sca, ref);
  EXPECT_EQ(0, std::memcmp(&vec, &sca, sizeof(float)));

  // The thread-split wrapper reduces chunk partials — exact max is
  // associative, so any split is bitwise identical; +inf passes through
  // (the executor's isfinite guard rejects it downstream).
  EXPECT_EQ(of::max_abs(src.data(), src.size()), ref);
  EXPECT_EQ(of::max_abs(src.data(), 0), 0.0f);
  std::vector<float> big(100000, 0.25f);
  big[70001] = std::numeric_limits<float>::infinity();
  EXPECT_EQ(of::max_abs(big.data(), big.size()),
            std::numeric_limits<float>::infinity());
}
