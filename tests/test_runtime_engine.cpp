// The batched async serving runtime (src/runtime/): micro-batch formation,
// batching determinism, backend parity through the engine, shutdown with
// in-flight requests, aggregated stats, routed dispatch, priority classes,
// deadlines — plus a multi-producer stress test over the router and the
// zero-downtime weight hot-swap suite (reload under load, post-swap
// parity with a cold-constructed engine, mismatch rejection).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include <sstream>

#include "runtime/engine.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

using namespace odenet;
using models::Arch;
using models::StageId;
using runtime::BackendConfig;
using runtime::EngineConfig;
using runtime::InferenceEngine;
using runtime::InferenceResult;
using runtime::SubmitOptions;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

models::Network make_net(std::uint64_t seed) {
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  util::Rng rng(seed);
  net.init(rng);
  return net;
}

core::Tensor random_image(util::Rng& rng) {
  core::Tensor x({3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return x;
}

double max_abs_diff(const core::Tensor& a, const core::Tensor& b) {
  double diff = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(a.data()[i]) -
                                    b.data()[i]));
  }
  return diff;
}

}  // namespace

TEST(InferenceEngine, ResultsMatchDirectForward) {
  models::Network net = make_net(1);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(500);
  InferenceEngine engine(net, cfg);

  util::Rng rng(11);
  core::Tensor image = random_image(rng);
  InferenceResult result = engine.submit(image).get();

  net.set_training(false);
  core::Tensor batch({1, 3, 16, 16});
  std::copy_n(image.data(), image.numel(), batch.data());
  core::Tensor reference = net.forward(batch);

  ASSERT_EQ(result.logits.numel(), 5u);
  for (int c = 0; c < 5; ++c) {
    EXPECT_FLOAT_EQ(result.logits.at1(c), reference.at2(0, c)) << c;
  }
  EXPECT_GE(result.predicted, 0);
  EXPECT_LT(result.predicted, 5);
  EXPECT_EQ(result.backend, core::ExecBackend::kFloat);
  EXPECT_GE(result.batch_size, 1);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(InferenceEngine, BatchingIsDeterministicAcrossArrivalOrderAndSplit) {
  models::Network net = make_net(2);
  util::Rng rng(22);
  const int kImages = 10;
  std::vector<core::Tensor> images;
  images.reserve(kImages);
  for (int i = 0; i < kImages; ++i) images.push_back(random_image(rng));

  auto serve = [&](int max_batch, bool reversed) {
    EngineConfig cfg;
    cfg.max_batch = max_batch;
    cfg.max_delay = std::chrono::microseconds(2000);
    InferenceEngine engine(net, cfg);
    std::vector<std::future<InferenceResult>> futures(kImages);
    for (int i = 0; i < kImages; ++i) {
      const int idx = reversed ? kImages - 1 - i : i;
      futures[static_cast<std::size_t>(idx)] =
          engine.submit(images[static_cast<std::size_t>(idx)]);
    }
    std::vector<InferenceResult> results;
    results.reserve(kImages);
    for (auto& f : futures) results.push_back(f.get());
    return results;
  };

  const auto batched = serve(4, /*reversed=*/false);
  const auto singles = serve(1, /*reversed=*/true);

  for (int i = 0; i < kImages; ++i) {
    const auto& a = batched[static_cast<std::size_t>(i)];
    const auto& b = singles[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.predicted, b.predicted) << "image " << i;
    ASSERT_TRUE(a.logits.same_shape(b.logits));
    for (std::size_t c = 0; c < a.logits.numel(); ++c) {
      EXPECT_FLOAT_EQ(a.logits.data()[c], b.logits.data()[c])
          << "image " << i << " logit " << c;
    }
  }
}

TEST(InferenceEngine, FormsFullBatchesUnderBurst) {
  models::Network net = make_net(3);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::seconds(2);  // flush only on full batches
  InferenceEngine engine(net, cfg);

  util::Rng rng(33);
  core::Tensor batch({8, 3, 16, 16});
  for (std::size_t i = 0; i < batch.numel(); ++i) {
    batch.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  auto futures = engine.submit_batch(batch);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().batch_size, 4);
  }
  const auto stats = engine.stats();
  ASSERT_EQ(stats.backends.size(), 1u);
  EXPECT_EQ(stats.backends[0].requests, 8u);
  EXPECT_EQ(stats.backends[0].batches, 2u);
  EXPECT_DOUBLE_EQ(stats.backends[0].mean_batch_size(), 4.0);
}

TEST(InferenceEngine, DeadlineFlushesPartialBatch) {
  models::Network net = make_net(4);
  EngineConfig cfg;
  cfg.max_batch = 64;  // never fills
  cfg.max_delay = std::chrono::microseconds(20000);
  InferenceEngine engine(net, cfg);

  util::Rng rng(44);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(engine.submit(random_image(rng)));
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_EQ(r.batch_size, 3);
    // The batch had to wait for the deadline, not a full window.
    EXPECT_GE(r.total_seconds, 0.015);
  }
  EXPECT_EQ(engine.stats().backends[0].batches, 1u);
}

TEST(InferenceEngine, ShutdownDrainsInFlightRequests) {
  models::Network net = make_net(5);
  EngineConfig cfg;
  cfg.max_batch = 64;
  cfg.max_delay = std::chrono::seconds(30);  // would park without drain
  InferenceEngine engine(net, cfg);

  util::Rng rng(55);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(engine.submit(random_image(rng)));
  engine.shutdown();  // must flush the queue immediately and serve it

  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_GE(r.predicted, 0);
    EXPECT_EQ(r.batch_size, 5);
  }
  EXPECT_EQ(engine.stats().requests(), 5u);
  EXPECT_THROW(engine.submit(random_image(rng)), odenet::Error);
}

TEST(InferenceEngine, DestructorFulfillsEveryFuture) {
  models::Network net = make_net(6);
  util::Rng rng(66);
  std::vector<std::future<InferenceResult>> futures;
  {
    EngineConfig cfg;
    cfg.max_batch = 64;
    cfg.max_delay = std::chrono::seconds(30);
    InferenceEngine engine(net, cfg);
    for (int i = 0; i < 3; ++i) {
      futures.push_back(engine.submit(random_image(rng)));
    }
  }  // ~InferenceEngine drains
  for (auto& f : futures) {
    EXPECT_NO_THROW((void)f.get());
  }
}

TEST(InferenceEngine, BackendParityWithinQuantizationTolerance) {
  models::Network net = make_net(7);
  EngineConfig cfg;
  cfg.max_batch = 1;  // per-image, so batch-stat BN sees one image everywhere
  cfg.max_delay = std::chrono::microseconds(500);
  BackendConfig float_ref;
  float_ref.backend = core::ExecBackend::kFloat;
  float_ref.per_image_batch_norm = true;  // align with the PL's BN semantics
  BackendConfig fixed_cpu;  // default: int16 integer datapath
  fixed_cpu.backend = core::ExecBackend::kFixed;
  fixed_cpu.per_image_batch_norm = true;
  BackendConfig fixed_carrier;  // float-carrier comparator, PR 6 precision
  fixed_carrier.backend = core::ExecBackend::kFixed;
  fixed_carrier.per_image_batch_norm = true;
  fixed_carrier.fixed_float_carrier = true;
  BackendConfig fpga_sim;
  fpga_sim.backend = core::ExecBackend::kFpgaSim;  // offloads every ODE stage
  cfg.backends = {float_ref, fixed_cpu, fpga_sim, fixed_carrier};
  InferenceEngine engine(net, cfg);
  ASSERT_EQ(engine.backend_count(), 4u);

  util::Rng rng(77);
  core::Tensor image = random_image(rng);
  auto pinned = [](std::size_t index) {
    SubmitOptions opts;
    opts.backend = index;
    return opts;
  };
  InferenceResult rf = engine.submit(image, pinned(0)).get();
  InferenceResult rq = engine.submit(image, pinned(1)).get();
  InferenceResult ra = engine.submit(image, pinned(2)).get();
  InferenceResult rc = engine.submit(image, pinned(3)).get();

  EXPECT_LT(max_abs_diff(rf.logits, rc.logits), 1e-3);   // Q11.20 activations
  EXPECT_LT(max_abs_diff(rf.logits, rq.logits), 0.1);    // int16 operand grid
  EXPECT_LT(max_abs_diff(rf.logits, ra.logits), 0.15);   // full PL datapath
  EXPECT_EQ(rf.pl_cycles, 0u);
  EXPECT_EQ(rq.pl_cycles, 0u);
  EXPECT_EQ(rc.pl_cycles, 0u);
  EXPECT_GT(ra.pl_cycles, 0u);
}

TEST(InferenceEngine, StatsFoldPlCyclesAndEmitJson) {
  models::Network net = make_net(8);
  EngineConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay = std::chrono::microseconds(500);
  BackendConfig fpga_sim;
  fpga_sim.backend = core::ExecBackend::kFpgaSim;
  cfg.backends = {fpga_sim};
  InferenceEngine engine(net, cfg);

  util::Rng rng(88);
  std::vector<std::future<InferenceResult>> futures;
  std::uint64_t result_cycles = 0;
  for (int i = 0; i < 4; ++i) futures.push_back(engine.submit(random_image(rng)));
  for (auto& f : futures) result_cycles += f.get().pl_cycles;

  const auto stats = engine.stats();
  ASSERT_EQ(stats.backends.size(), 1u);
  EXPECT_EQ(stats.backends[0].requests, 4u);
  EXPECT_GT(stats.pl_cycles(), 0u);
  // Per-result shares are the batch total split evenly; integer division
  // can only lose remainders, never invent cycles.
  EXPECT_LE(result_cycles, stats.pl_cycles());
  EXPECT_GT(result_cycles, stats.pl_cycles() / 2);

  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"images_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"fpga_sim\""), std::string::npos);
  EXPECT_NE(json.find("\"pl_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\""), std::string::npos);
  EXPECT_NE(json.find("\"priorities\""), std::string::npos);
  EXPECT_NE(json.find("\"hist_le_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"timeouts\""), std::string::npos);
  EXPECT_NE(json.find("\"model_version\""), std::string::npos);
  EXPECT_NE(json.find("\"swaps\""), std::string::npos);
  EXPECT_NE(json.find("\"promotions\""), std::string::npos);
  EXPECT_NE(json.find("\"arena_capacity_floats\""), std::string::npos);

  // Arena-pool gauges: serving materialized scratch, and a steady workload
  // stops growing it.
  EXPECT_GE(stats.backends[0].arenas, 1u);
  EXPECT_GT(stats.backends[0].arena_capacity_floats, 0u);
  EXPECT_GE(stats.backends[0].arena_growths, 1u);
}

TEST(InferenceEngine, MalformedImageFailsItsFutureOnly) {
  models::Network net = make_net(9);
  EngineConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay = std::chrono::microseconds(500);
  InferenceEngine engine(net, cfg);

  // Wrong spatial extent: the future carries the error; submit() itself
  // must not throw, and no micro-batch is poisoned.
  auto bad = engine.submit(core::Tensor({3, 8, 8}));
  EXPECT_THROW((void)bad.get(), odenet::Error);
  auto also_bad = engine.submit(core::Tensor({2, 3, 16, 16}));
  EXPECT_THROW((void)also_bad.get(), odenet::Error);

  // The engine keeps serving good requests, and the rejects never reached
  // a backend.
  util::Rng rng(99);
  EXPECT_GE(engine.submit(random_image(rng)).get().predicted, 0);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests(), 1u);
  EXPECT_EQ(stats.timeouts(), 0u);
}

TEST(InferenceEngine, PinnedBackendOutOfRangeThrows) {
  models::Network net = make_net(9);
  InferenceEngine engine(net);
  util::Rng rng(9);
  SubmitOptions out_of_range;
  out_of_range.backend = 3;
  EXPECT_THROW((void)engine.submit(random_image(rng), out_of_range),
               odenet::Error);
}

TEST(InferenceEngine, ExpiredDeadlineRejectsWithTimeoutError) {
  models::Network net = make_net(10);
  EngineConfig cfg;
  cfg.max_batch = 64;  // never fills
  cfg.max_delay = std::chrono::microseconds(100000);
  InferenceEngine engine(net, cfg);

  util::Rng rng(10);
  runtime::SubmitOptions opts;
  opts.priority = runtime::Priority::kLow;
  opts.deadline = std::chrono::microseconds(500);  // beats the 100 ms flush
  auto doomed = engine.submit(random_image(rng), opts);
  EXPECT_THROW((void)doomed.get(), runtime::DeadlineExceeded);

  // A generous deadline is not a timeout.
  runtime::SubmitOptions relaxed;
  relaxed.deadline = std::chrono::seconds(30);
  const InferenceResult ok = engine.submit(random_image(rng), relaxed).get();
  EXPECT_GE(ok.predicted, 0);
  EXPECT_EQ(ok.priority, runtime::Priority::kNormal);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests(), 1u);
  EXPECT_EQ(stats.timeouts(), 1u);
  const auto& low =
      stats.priorities[static_cast<std::size_t>(runtime::Priority::kLow)];
  EXPECT_EQ(low.timeouts, 1u);
  EXPECT_EQ(low.requests, 0u);
}

TEST(InferenceEngine, RoutedSubmitBalancesAcrossBackends) {
  models::Network net = make_net(11);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(100000);
  cfg.route_policy = runtime::RoutePolicy::kLeastDepth;
  cfg.backends = {BackendConfig{}, BackendConfig{}};  // two float replicas
  InferenceEngine engine(net, cfg);
  ASSERT_EQ(engine.backend_count(), 2u);
  EXPECT_GT(engine.modeled_request_seconds(0), 0.0);

  util::Rng rng(11);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.submit(random_image(rng)));  // routed
  }
  for (auto& f : futures) EXPECT_GE(f.get().predicted, 0);

  const auto stats = engine.stats();
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_EQ(stats.requests(), 8u);
  EXPECT_EQ(stats.routed(), 8u);
  // Least-depth alternates while requests are outstanding: both replicas
  // must have served work.
  EXPECT_GT(stats.backends[0].requests, 0u);
  EXPECT_GT(stats.backends[1].requests, 0u);
  EXPECT_EQ(stats.policy, "least_depth");
}

TEST(InferenceEngine, StaticPolicyPinsRoutedTraffic) {
  models::Network net = make_net(12);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(500);
  cfg.route_policy = runtime::RoutePolicy::kStatic;
  cfg.static_backend = 1;
  cfg.backends = {BackendConfig{}, BackendConfig{}};
  InferenceEngine engine(net, cfg);

  util::Rng rng(12);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(engine.submit(random_image(rng)));
  for (auto& f : futures) EXPECT_EQ(f.get().backend_index, 1u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.backends[0].requests, 0u);
  EXPECT_EQ(stats.backends[1].requests, 6u);
  EXPECT_EQ(stats.backends[1].routed, 6u);
}

// ---- weight hot-swap --------------------------------------------------

TEST(InferenceEngine, ReloadServesNewWeightsBitIdenticalToColdEngine) {
  models::Network old_net = make_net(20);
  models::Network new_net = make_net(21);  // same spec, different weights
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(500);

  InferenceEngine engine(old_net, cfg);
  const std::uint64_t v0 = engine.model_version();
  EXPECT_GT(v0, 0u);

  util::Rng rng(20);
  core::Tensor image = random_image(rng);
  const InferenceResult before = engine.submit(image).get();

  const auto snap = new_net.export_snapshot();
  const std::uint64_t v1 = engine.reload(snap);
  EXPECT_GT(v1, v0);
  EXPECT_EQ(engine.model_version(), v1);
  // Re-publishing the live version is a no-op.
  EXPECT_EQ(engine.reload(snap), v1);

  const InferenceResult after = engine.submit(image).get();
  EXPECT_GT(max_abs_diff(before.logits, after.logits), 0.0);

  // Bitwise: a hot-swapped replica and a cold engine constructed from the
  // same snapshot must be indistinguishable (float backend).
  InferenceEngine cold(snap, cfg);
  const InferenceResult fresh = cold.submit(image).get();
  for (std::size_t c = 0; c < after.logits.numel(); ++c) {
    EXPECT_EQ(after.logits.data()[c], fresh.logits.data()[c]) << "logit " << c;
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.model_version, v1);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_GE(stats.swaps(), 1u);
  EXPECT_GT(stats.backends[0].swap_seconds_total, 0.0);
  EXPECT_GE(stats.backends[0].max_swap_seconds,
            stats.backends[0].mean_swap_seconds());
}

TEST(InferenceEngine, ReloadRequantizesFpgaAndFixedBackends) {
  models::Network old_net = make_net(22);
  models::Network new_net = make_net(23);
  EngineConfig cfg;
  cfg.max_batch = 1;  // per-image batches: batch-stat BN is deterministic
  cfg.max_delay = std::chrono::microseconds(500);
  BackendConfig fixed_cpu;
  fixed_cpu.backend = core::ExecBackend::kFixed;
  BackendConfig fpga_sim;
  fpga_sim.backend = core::ExecBackend::kFpgaSim;
  cfg.backends = {fixed_cpu, fpga_sim};

  InferenceEngine engine(old_net, cfg);
  const auto snap = new_net.export_snapshot();
  engine.reload(snap);

  util::Rng rng(22);
  core::Tensor image = random_image(rng);
  SubmitOptions on_fixed, on_fpga;
  on_fixed.backend = 0;
  on_fpga.backend = 1;
  const InferenceResult fixed_hot = engine.submit(image, on_fixed).get();
  const InferenceResult fpga_hot = engine.submit(image, on_fpga).get();

  InferenceEngine cold(snap, cfg);
  const InferenceResult fixed_cold = cold.submit(image, on_fixed).get();
  const InferenceResult fpga_cold = cold.submit(image, on_fpga).get();

  // The quantized datapaths are deterministic in the weights, so the
  // re-quantized BRAM image must reproduce a cold construction from the
  // same snapshot to float tolerance.
  EXPECT_LT(max_abs_diff(fixed_hot.logits, fixed_cold.logits), 1e-5);
  EXPECT_LT(max_abs_diff(fpga_hot.logits, fpga_cold.logits), 1e-5);
  EXPECT_GT(fpga_hot.pl_cycles, 0u);
}

TEST(InferenceEngine, ReloadRejectsMismatchedSnapshotAndKeepsServing) {
  models::Network net = make_net(24);
  InferenceEngine engine(net);
  const std::uint64_t v0 = engine.model_version();

  models::Network other(
      models::make_spec(Arch::kResNet, 14, tiny_width()));
  util::Rng rng(24);
  other.init(rng);
  EXPECT_THROW(engine.reload(other.export_snapshot()), odenet::Error);
  EXPECT_THROW(engine.reload(nullptr), odenet::Error);

  // Same architecture but a different forward solver: replicas integrate
  // with construction-time settings, so this would silently change the
  // served numerics — rejected before publish.
  models::SolverConfig heun;
  heun.method = solver::Method::kHeun;
  models::Network resolved(
      models::make_spec(Arch::kROdeNet3, 14, tiny_width()), heun);
  resolved.init(rng);
  EXPECT_THROW(engine.reload(resolved.export_snapshot()), odenet::Error);

  // A well-formed v2 file whose payload disagrees with its own spec
  // header (here: zero params) must be rejected BEFORE publishing — a
  // worker-thread apply failure would kill the process.
  std::stringstream hollow;
  {
    util::BinaryWriter w(hollow);
    util::write_weights_header(w, util::kSnapshotVersion);
    w.write_string(models::arch_name(Arch::kROdeNet3));
    w.write_u32(14);
    w.write_u32(3);   // input_channels
    w.write_u32(16);  // input_size
    w.write_u32(4);   // base_channels
    w.write_u32(5);   // num_classes
    w.write_u32(0);   // kEuler
    w.write_u32(0);   // kDiscreteBackprop
    w.write_u32(0);   // kResNetCompatible
    w.write_f64(1e-3);
    w.write_f64(1e-4);
    w.write_u64(999);  // saved version
    w.write_u64(0);    // params: none
    w.write_u64(0);    // bns: none
  }
  EXPECT_THROW(engine.reload(models::ModelSnapshot::load(hollow)),
               odenet::Error);

  // Every rejected publish left the old version serving.
  EXPECT_EQ(engine.model_version(), v0);
  EXPECT_EQ(engine.stats().reloads, 0u);
  EXPECT_GE(engine.submit(random_image(rng)).get().predicted, 0);
}

// The hot-swap stress harness: producers hammer a multi-backend engine
// while the main thread races a stream of reload() publishes against
// them. Every future must fulfill exactly once (no drops, no double
// sets), the engine must end on the last published version, and a
// post-drain request must match a cold engine on the final snapshot.
TEST(InferenceEngine, StressReloadRacesProducersWithoutDroppingFutures) {
  models::Network net = make_net(25);
  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay = std::chrono::microseconds(300);
  BackendConfig two_workers;
  two_workers.workers = 2;
  cfg.backends = {two_workers, BackendConfig{}};
  InferenceEngine engine(net, cfg);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 30;
  constexpr int kReloads = 6;
  std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
  for (auto& lane : futures) lane.reserve(kPerProducer);

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      util::Rng rng(2000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerProducer; ++i) {
        runtime::SubmitOptions opts;
        opts.priority = static_cast<runtime::Priority>((t + i) % 3);
        futures[static_cast<std::size_t>(t)].push_back(
            engine.submit(random_image(rng), opts));
      }
    });
  }

  // Publish a stream of retrained models while the producers submit.
  models::ModelSnapshot::Ptr last;
  for (int r = 0; r < kReloads; ++r) {
    models::Network retrained = make_net(100 + static_cast<std::uint64_t>(r));
    last = retrained.export_snapshot();
    EXPECT_EQ(engine.reload(last), last->version());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& p : producers) p.join();

  int fulfilled = 0;
  for (auto& lane : futures) {
    for (auto& f : lane) {
      ASSERT_TRUE(f.valid());
      EXPECT_GE(f.get().predicted, 0);  // exactly-once: get() consumes
      EXPECT_FALSE(f.valid());
      ++fulfilled;
    }
  }
  EXPECT_EQ(fulfilled, kProducers * kPerProducer);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests(),
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.timeouts(), 0u);
  EXPECT_EQ(stats.reloads, static_cast<std::uint64_t>(kReloads));
  EXPECT_EQ(stats.model_version, last->version());
  // Each worker re-syncs at most once per publish.
  EXPECT_LE(stats.swaps(), static_cast<std::uint64_t>(kReloads * 3));

  // Post-drain requests serve the final version, matching a cold engine.
  util::Rng rng(25);
  core::Tensor image = random_image(rng);
  SubmitOptions on_fixed;
  on_fixed.backend = 1;
  const InferenceResult hot = engine.submit(image, on_fixed).get();
  EngineConfig cold_cfg = cfg;
  cold_cfg.backends = {BackendConfig{}};
  InferenceEngine cold(last, cold_cfg);
  const InferenceResult fresh = cold.submit(image).get();
  for (std::size_t c = 0; c < hot.logits.numel(); ++c) {
    EXPECT_EQ(hot.logits.data()[c], fresh.logits.data()[c]) << "logit " << c;
  }
}

// The satellite stress harness: N producer threads x M backends submitting
// mixed-priority routed requests; every future fulfilled exactly once, no
// timeout for generous deadlines, and the stats counters sum to the submit
// count.
TEST(InferenceEngine, StressManyProducersRoutedMixedPriorities) {
  models::Network net = make_net(13);
  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay = std::chrono::microseconds(500);
  cfg.route_policy = runtime::RoutePolicy::kModeledLatency;
  BackendConfig two_workers;
  two_workers.workers = 2;
  cfg.backends = {two_workers, BackendConfig{}};
  InferenceEngine engine(net, cfg);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 25;
  constexpr int kTotal = kProducers * kPerProducer;
  std::array<std::uint64_t, runtime::kPriorityLevels> submitted_by_class{};
  std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
  std::atomic<int> fulfilled{0};

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    for (int i = 0; i < kPerProducer; ++i) {
      submitted_by_class[static_cast<std::size_t>((t + i) % 3)] += 1;
    }
    producers.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerProducer; ++i) {
        runtime::SubmitOptions opts;
        opts.priority = static_cast<runtime::Priority>((t + i) % 3);
        if (i % 2 == 0) opts.deadline = std::chrono::seconds(60);  // generous
        futures[static_cast<std::size_t>(t)].push_back(
            engine.submit(random_image(rng), opts));
      }
    });
  }
  for (auto& p : producers) p.join();

  for (auto& lane : futures) {
    for (auto& f : lane) {
      ASSERT_TRUE(f.valid());
      const InferenceResult r = f.get();  // exactly-once: get() consumes
      EXPECT_GE(r.predicted, 0);
      EXPECT_FALSE(f.valid());
      fulfilled.fetch_add(1);
    }
  }
  EXPECT_EQ(fulfilled.load(), kTotal);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.timeouts(), 0u);  // generous deadlines never expire
  EXPECT_EQ(stats.requests(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stats.routed(), static_cast<std::uint64_t>(kTotal));
  std::uint64_t backend_sum = 0;
  for (const auto& b : stats.backends) backend_sum += b.requests;
  EXPECT_EQ(backend_sum, static_cast<std::uint64_t>(kTotal));
  std::uint64_t priority_sum = 0;
  for (int p = 0; p < runtime::kPriorityLevels; ++p) {
    const auto& ps = stats.priorities[static_cast<std::size_t>(p)];
    EXPECT_EQ(ps.requests, submitted_by_class[static_cast<std::size_t>(p)])
        << "priority " << p;
    std::uint64_t hist_sum = 0;
    for (const auto count : ps.histogram) hist_sum += count;
    EXPECT_EQ(hist_sum, ps.requests) << "priority " << p;
    priority_sum += ps.requests;
  }
  EXPECT_EQ(priority_sum, static_cast<std::uint64_t>(kTotal));
  // Drained engine: gauges return to zero, and each backend's conv-scratch
  // pool materialized at least one arena but never more than it has
  // workers (arenas are created on concurrent demand, not per replica).
  for (std::size_t b = 0; b < engine.backend_count(); ++b) {
    EXPECT_EQ(engine.queue_depth(b), 0u);
    EXPECT_EQ(engine.in_flight(b), 0);
    if (stats.backends[b].requests > 0) {
      EXPECT_GE(engine.scratch_arenas(b), 1u);
    }
    EXPECT_LE(engine.scratch_arenas(b),
              static_cast<std::size_t>(cfg.backends[b].workers));
  }
}

// ---- overload protection ----------------------------------------------

TEST(InferenceEngine, ShedsFailFastWhenQueueBoundReachedAndEvictsForHigh) {
  models::Network net = make_net(30);
  EngineConfig cfg;
  cfg.max_batch = 64;  // never fills: requests stay queued
  cfg.max_delay = std::chrono::microseconds(200000);
  cfg.max_queue_depth = 2;
  InferenceEngine engine(net, cfg);

  util::Rng rng(30);
  // Two normal requests occupy the whole bound while the worker parks on
  // the 200 ms flush window.
  auto victim = engine.submit(random_image(rng));
  auto survivor = engine.submit(random_image(rng));

  // Third normal arrival: no lower class to evict -> fail-fast QueueFull.
  auto rejected = engine.submit(random_image(rng));
  EXPECT_THROW((void)rejected.get(), runtime::QueueFull);

  // High arrival: evicts the oldest normal waiter instead.
  runtime::SubmitOptions high;
  high.priority = runtime::Priority::kHigh;
  auto admitted = engine.submit(random_image(rng), high);
  EXPECT_THROW((void)victim.get(), runtime::QueueFull);
  EXPECT_GE(admitted.get().predicted, 0);
  EXPECT_GE(survivor.get().predicted, 0);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests(), 2u);  // high + surviving normal served
  EXPECT_EQ(stats.rejected(), 1u);
  EXPECT_EQ(stats.evicted(), 1u);
  EXPECT_EQ(stats.shed(), 2u);
  const auto& normal = stats.priorities[static_cast<std::size_t>(
      runtime::Priority::kNormal)];
  EXPECT_EQ(normal.rejected, 1u);
  EXPECT_EQ(normal.evicted, 1u);

  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"rejected\""), std::string::npos);
  EXPECT_NE(json.find("\"evicted\""), std::string::npos);
  EXPECT_NE(json.find("\"shed\""), std::string::npos);
  EXPECT_NE(json.find("\"measured_request_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"modeled_request_ms\""), std::string::npos);
}

TEST(InferenceEngine, NonEvictableSubmitSurvivesHighPressure) {
  models::Network net = make_net(31);
  EngineConfig cfg;
  cfg.max_batch = 64;
  cfg.max_delay = std::chrono::microseconds(200000);
  cfg.max_queue_depth = 1;
  InferenceEngine engine(net, cfg);

  util::Rng rng(31);
  runtime::SubmitOptions pinned;
  pinned.priority = runtime::Priority::kLow;
  pinned.evictable = false;
  auto protected_low = engine.submit(random_image(rng), pinned);

  runtime::SubmitOptions high;
  high.priority = runtime::Priority::kHigh;
  auto bounced = engine.submit(random_image(rng), high);
  // Nothing evictable below it: the high arrival itself is shed.
  EXPECT_THROW((void)bounced.get(), runtime::QueueFull);
  EXPECT_GE(protected_low.get().predicted, 0);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.evicted(), 0u);
  EXPECT_EQ(stats.priorities[static_cast<std::size_t>(
                                 runtime::Priority::kHigh)]
                .rejected,
            1u);
}

TEST(InferenceEngine, MeasuredLatencyPolicyWarmsFromServedTraffic) {
  models::Network net = make_net(32);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(500);
  cfg.route_policy = runtime::RoutePolicy::kMeasuredLatency;
  cfg.backends = {BackendConfig{}, BackendConfig{}};
  InferenceEngine engine(net, cfg);

  util::Rng rng(32);
  // Cold: the EWMA reports 0 and the router runs on the model.
  EXPECT_DOUBLE_EQ(engine.measured_request_seconds(0), 0.0);
  EXPECT_GT(engine.modeled_request_seconds(0), 0.0);

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(engine.submit(random_image(rng)));
  }
  for (auto& f : futures) EXPECT_GE(f.get().predicted, 0);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.policy, "measured_latency");
  EXPECT_EQ(stats.requests(), 24u);
  // At least the anchor backend served enough batches to warm its EWMA,
  // and the warmed measurement is surfaced through stats and the gauge.
  double measured_max = 0.0;
  for (std::size_t b = 0; b < engine.backend_count(); ++b) {
    measured_max =
        std::max(measured_max, engine.measured_request_seconds(b));
  }
  EXPECT_GT(measured_max, 0.0);
  double stats_max = 0.0;
  for (const auto& b : stats.backends) {
    stats_max = std::max(stats_max, b.measured_request_seconds);
    EXPECT_GT(b.modeled_request_seconds, 0.0);
  }
  EXPECT_GT(stats_max, 0.0);
}

TEST(InferenceEngine, PreemptiveFlushCutsLoneHighPriorityLatency) {
  models::Network net = make_net(33);
  EngineConfig slow;
  slow.max_batch = 64;
  slow.max_delay = std::chrono::microseconds(150000);  // 150 ms window
  util::Rng rng(33);

  // Control: without preemption a lone high request sits out max_delay.
  {
    InferenceEngine engine(net, slow);
    runtime::SubmitOptions high;
    high.priority = runtime::Priority::kHigh;
    const InferenceResult r =
        engine.submit(random_image(rng), high).get();
    EXPECT_GE(r.total_seconds, 0.1);
  }
  // Preemptive flush: the same arrival dispatches at the shrunk window.
  {
    EngineConfig preempt = slow;
    preempt.high_priority_flush = std::chrono::microseconds(1000);
    InferenceEngine engine(net, preempt);
    runtime::SubmitOptions high;
    high.priority = runtime::Priority::kHigh;
    const InferenceResult r =
        engine.submit(random_image(rng), high).get();
    EXPECT_LT(r.total_seconds, 0.1);
  }
}

// Admission control racing the hot-swap publish path: producers hammer a
// tightly bounded queue while reload() publishes new versions. Every
// future must settle exactly once — served, shed with QueueFull, or
// expired with DeadlineExceeded — and the counters must account for
// every submit.
TEST(InferenceEngine, StressRejectDuringHotSwapSettlesEveryFuture) {
  models::Network net = make_net(34);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(300);
  cfg.max_queue_depth = 6;
  BackendConfig two_workers;
  two_workers.workers = 2;
  cfg.backends = {two_workers, BackendConfig{}};
  InferenceEngine engine(net, cfg);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;
  std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
  for (auto& lane : futures) lane.reserve(kPerProducer);

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      util::Rng rng(3000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerProducer; ++i) {
        runtime::SubmitOptions opts;
        opts.priority = static_cast<runtime::Priority>((t + i) % 3);
        if (i % 4 == 0) opts.deadline = std::chrono::milliseconds(50);
        futures[static_cast<std::size_t>(t)].push_back(
            engine.submit(random_image(rng), opts));
      }
    });
  }
  models::ModelSnapshot::Ptr last;
  for (int r = 0; r < 5; ++r) {
    models::Network retrained = make_net(300 + static_cast<std::uint64_t>(r));
    last = retrained.export_snapshot();
    engine.reload(last);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  for (auto& p : producers) p.join();

  std::uint64_t served = 0, shed = 0;
  for (auto& lane : futures) {
    for (auto& f : lane) {
      ASSERT_TRUE(f.valid());
      try {
        EXPECT_GE(f.get().predicted, 0);
        ++served;
      } catch (const runtime::QueueFull&) {
        ++shed;
      } catch (const runtime::DeadlineExceeded&) {
        ++shed;
      }
      EXPECT_FALSE(f.valid());
    }
  }
  EXPECT_EQ(served + shed, static_cast<std::uint64_t>(kProducers *
                                                      kPerProducer));

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests(), served);
  EXPECT_EQ(stats.shed(), shed);
  EXPECT_EQ(stats.model_version, last->version());
  // The engine survived the races and still serves on the last version.
  util::Rng rng(34);
  EXPECT_GE(engine.submit(random_image(rng)).get().predicted, 0);
}

TEST(InferenceEngine, ReloadResetsMeasuredEwmaToColdState) {
  // A hot-swap re-keys every versioned weight cache, so the first batches
  // on the new snapshot pay one-off repack work; the engine drops the
  // measured service-time EWMAs back to cold and re-warms from fresh
  // traffic instead of routing on stale pre-swap measurements.
  models::Network net = make_net(40);
  models::Network next = make_net(41);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(500);
  cfg.route_policy = runtime::RoutePolicy::kMeasuredLatency;
  cfg.backends = {BackendConfig{}, BackendConfig{}};
  InferenceEngine engine(net, cfg);

  util::Rng rng(40);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(engine.submit(random_image(rng)));
  }
  for (auto& f : futures) EXPECT_GE(f.get().predicted, 0);
  double warm_max = 0.0;
  for (std::size_t b = 0; b < engine.backend_count(); ++b) {
    warm_max = std::max(warm_max, engine.measured_request_seconds(b));
  }
  ASSERT_GT(warm_max, 0.0) << "EWMA never warmed; test cannot proceed";

  engine.reload(next.export_snapshot());
  for (std::size_t b = 0; b < engine.backend_count(); ++b) {
    EXPECT_DOUBLE_EQ(engine.measured_request_seconds(b), 0.0)
        << "backend " << b << " EWMA survived the reload";
  }

  // Fresh traffic re-warms at least one backend.
  futures.clear();
  for (int i = 0; i < 24; ++i) {
    futures.push_back(engine.submit(random_image(rng)));
  }
  for (auto& f : futures) EXPECT_GE(f.get().predicted, 0);
  double rewarm_max = 0.0;
  for (std::size_t b = 0; b < engine.backend_count(); ++b) {
    rewarm_max = std::max(rewarm_max, engine.measured_request_seconds(b));
  }
  EXPECT_GT(rewarm_max, 0.0);
}

namespace {

/// Nudges only params under `prefix` ("fc.", "layer3_2.", ...), leaving
/// the rest of the network untouched — shapes the per-stage deltas the
/// registry tests ship.
void perturb_params(models::Network& net, const std::string& prefix,
                    float delta) {
  for (core::Param* p : net.params()) {
    if (p->name.rfind(prefix, 0) == 0) {
      for (std::size_t i = 0; i < p->value.numel(); ++i) {
        p->value.data()[i] += delta;
      }
    }
  }
  net.set_weight_version(0);  // weights mutated in place: invalidate packs
}

}  // namespace

TEST(InferenceEngine, ServeFromRegistrySeedsFollowsAndGatesReload) {
  models::SnapshotRegistry::Config reg_cfg;
  reg_cfg.gate_delta = 0.05;
  models::SnapshotRegistry registry(reg_cfg);
  // Score by version id: everything is fine except versions marked bad.
  std::set<std::uint64_t> bad_versions;
  registry.set_eval([&bad_versions](const models::ModelSnapshot& s) {
    return bad_versions.count(s.version()) != 0 ? 0.2 : 0.9;
  });

  models::Network net = make_net(50);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(500);
  cfg.model = "prod";
  InferenceEngine engine(net, cfg);
  const std::uint64_t v0 = engine.model_version();

  // Binding an empty registry seeds it with the serving snapshot.
  engine.serve_from(registry);
  ASSERT_NE(registry.active("prod"), nullptr);
  EXPECT_EQ(registry.active("prod")->version(), v0);
  EXPECT_THROW(engine.serve_from(registry), odenet::Error);

  util::Rng rng(50);
  core::Tensor image = random_image(rng);
  const InferenceResult before = engine.submit(image).get();
  EXPECT_EQ(before.model_version, v0);

  // reload() on a bound engine is a registry publish: the new version is
  // retained AND the engine adopts it through its subscription.
  models::Network retrained = make_net(51);
  const auto snap1 = retrained.export_snapshot();
  EXPECT_EQ(engine.reload(snap1), snap1->version());
  EXPECT_EQ(engine.model_version(), snap1->version());
  EXPECT_EQ(registry.active("prod")->version(), snap1->version());
  EXPECT_EQ(registry.versions("prod").size(), 2u);
  EXPECT_EQ(engine.submit(image).get().model_version, snap1->version());

  // A gated regression is refused: reload throws, nothing was retained,
  // and the engine keeps serving what it served.
  models::Network bad = make_net(52);
  const auto bad_snap = bad.export_snapshot();
  bad_versions.insert(bad_snap->version());
  EXPECT_THROW(engine.reload(bad_snap), odenet::Error);
  EXPECT_EQ(engine.model_version(), snap1->version());
  EXPECT_EQ(registry.versions("prod").size(), 2u);

  // Rollback through the registry lands on the engine like a publish;
  // the rolled-back engine is bitwise the engine it used to be.
  registry.rollback("prod", v0);
  EXPECT_EQ(engine.model_version(), v0);
  const InferenceResult after = engine.submit(image).get();
  EXPECT_EQ(after.model_version, v0);
  for (std::size_t c = 0; c < after.logits.numel(); ++c) {
    EXPECT_EQ(after.logits.data()[c], before.logits.data()[c]) << "logit " << c;
  }
}

// Acceptance: rollback under load with zero dropped or mis-versioned
// requests. Producers hammer a registry-bound engine while the main
// thread races publishes and rollbacks; every future fulfills exactly
// once, every result carries a version that was actually published, and
// the post-drain engine bitwise-matches a cold engine on the rolled-back
// snapshot.
TEST(InferenceEngine, StressRollbackRacesPublishesWithoutMisversionedResults) {
  models::SnapshotRegistry registry;
  models::Network net = make_net(53);
  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay = std::chrono::microseconds(300);
  cfg.model = "prod";
  BackendConfig two_workers;
  two_workers.workers = 2;
  cfg.backends = {two_workers};
  InferenceEngine engine(net, cfg);
  const std::uint64_t v0 = engine.model_version();
  engine.serve_from(registry);
  registry.pin("prod", v0);  // the rollback target must survive retention

  std::set<std::uint64_t> published{v0};

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;
  std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
  for (auto& lane : futures) lane.reserve(kPerProducer);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      util::Rng rng(3000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerProducer; ++i) {
        futures[static_cast<std::size_t>(t)].push_back(
            engine.submit(random_image(rng)));
      }
    });
  }

  // Race a publish/rollback stream against the producers.
  for (int r = 0; r < 6; ++r) {
    models::Network retrained = make_net(300 + static_cast<std::uint64_t>(r));
    const auto snap = retrained.export_snapshot();
    ASSERT_TRUE(registry.publish("prod", snap).accepted);
    published.insert(snap->version());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (r % 2 == 1) registry.rollback("prod", v0);
  }
  registry.rollback("prod", v0);
  for (auto& p : producers) p.join();

  int fulfilled = 0;
  for (auto& lane : futures) {
    for (auto& f : lane) {
      const InferenceResult res = f.get();  // exactly-once: get() consumes
      EXPECT_GE(res.predicted, 0);
      EXPECT_EQ(published.count(res.model_version), 1u)
          << "served on version " << res.model_version
          << " which was never published";
      ++fulfilled;
    }
  }
  EXPECT_EQ(fulfilled, kProducers * kPerProducer);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests(),
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.timeouts(), 0u);
  EXPECT_EQ(engine.model_version(), v0);

  // Post-rollback serving bitwise-matches a cold engine on the retained
  // rollback target.
  util::Rng rng(53);
  core::Tensor image = random_image(rng);
  const InferenceResult hot = engine.submit(image).get();
  EXPECT_EQ(hot.model_version, v0);
  InferenceEngine cold(registry.find("prod", v0), cfg);
  const InferenceResult fresh = cold.submit(image).get();
  for (std::size_t c = 0; c < hot.logits.numel(); ++c) {
    EXPECT_EQ(hot.logits.data()[c], fresh.logits.data()[c]) << "logit " << c;
  }
}

// Acceptance: a delta publish ships only changed tensors, and the FPGA
// worker sync re-quantizes only the BRAM stages the delta touches — a
// head fine-tune leaves every offloaded trunk stage's BRAM image alone.
TEST(InferenceEngine, DeltaReloadRequantizesOnlyTouchedBramStages) {
  models::Network net = make_net(54);
  const auto snap0 = net.export_snapshot();
  EngineConfig cfg;
  cfg.max_batch = 1;  // per-image batches: batch-stat BN is deterministic
  cfg.max_delay = std::chrono::microseconds(500);
  BackendConfig fpga_sim;
  fpga_sim.backend = core::ExecBackend::kFpgaSim;
  cfg.backends = {fpga_sim};  // offloaded empty = rODENet-3's
                              // single ODE stage (layer3_2)
  InferenceEngine engine(snap0, cfg);

  util::Rng rng(54);
  core::Tensor image = random_image(rng);
  EXPECT_EQ(engine.submit(image).get().model_version, snap0->version());

  // Head-only delta: fc is served in software, so NO BRAM stage changed.
  perturb_params(net, "fc.", 0.01f);
  const auto snap1 = net.export_snapshot();
  const models::SnapshotDelta d01 = models::ModelSnapshot::diff(*snap0, *snap1);
  const auto head_only = models::ModelSnapshot::assemble(*snap0, d01);
  engine.reload(head_only);
  const InferenceResult head_hot = engine.submit(image).get();
  EXPECT_EQ(head_hot.model_version, head_only->version());
  {
    const auto b = engine.stats().backends[0];
    EXPECT_EQ(b.delta_swaps, 1u);
    EXPECT_EQ(b.stages_requantized, 0u) << "head fine-tune re-quantized BRAM";
    EXPECT_EQ(b.stages_skipped, 1u);
  }
  // The skipped BRAM images still serve correctly: parity with a cold
  // engine built from the assembled snapshot.
  InferenceEngine cold(head_only, cfg);
  EXPECT_LT(max_abs_diff(head_hot.logits, cold.submit(image).get().logits),
            1e-5);

  // Trunk delta touching the offloaded stage: it (and only it) is
  // re-quantized this time.
  perturb_params(net, "layer3_2.", 0.01f);
  const auto snap2 = net.export_snapshot();
  const models::SnapshotDelta d12 =
      models::ModelSnapshot::diff(*head_only, *snap2);
  const auto trunk_delta = models::ModelSnapshot::assemble(*head_only, d12);
  EXPECT_TRUE(trunk_delta->stage_changed(StageId::kLayer3_2));
  EXPECT_FALSE(trunk_delta->stage_changed(StageId::kLayer1));
  engine.reload(trunk_delta);
  EXPECT_EQ(engine.submit(image).get().model_version, trunk_delta->version());
  {
    const auto b = engine.stats().backends[0];
    EXPECT_EQ(b.delta_swaps, 2u);
    EXPECT_EQ(b.stages_requantized, 1u);
    EXPECT_EQ(b.stages_skipped, 1u);
  }

  // A full (non-delta) reload re-quantizes everything — the fallback the
  // delta path is measured against.
  models::Network other = make_net(55);
  engine.reload(other.export_snapshot());
  EXPECT_GE(engine.submit(image).get().predicted, 0);
  {
    const auto b = engine.stats().backends[0];
    EXPECT_EQ(b.delta_swaps, 2u);
    EXPECT_EQ(b.stages_requantized, 2u);
    EXPECT_EQ(b.stages_skipped, 1u);
  }
}
