// The batched async serving runtime (src/runtime/): micro-batch formation,
// batching determinism, backend parity through the engine, shutdown with
// in-flight requests, aggregated stats.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/engine.hpp"
#include "util/rng.hpp"

using namespace odenet;
using models::Arch;
using models::StageId;
using runtime::BackendConfig;
using runtime::EngineConfig;
using runtime::InferenceEngine;
using runtime::InferenceResult;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

models::Network make_net(std::uint64_t seed) {
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  util::Rng rng(seed);
  net.init(rng);
  return net;
}

core::Tensor random_image(util::Rng& rng) {
  core::Tensor x({3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return x;
}

double max_abs_diff(const core::Tensor& a, const core::Tensor& b) {
  double diff = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(a.data()[i]) -
                                    b.data()[i]));
  }
  return diff;
}

}  // namespace

TEST(InferenceEngine, ResultsMatchDirectForward) {
  models::Network net = make_net(1);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::microseconds(500);
  InferenceEngine engine(net, cfg);

  util::Rng rng(11);
  core::Tensor image = random_image(rng);
  InferenceResult result = engine.submit(image).get();

  net.set_training(false);
  core::Tensor batch({1, 3, 16, 16});
  std::copy_n(image.data(), image.numel(), batch.data());
  core::Tensor reference = net.forward(batch);

  ASSERT_EQ(result.logits.numel(), 5u);
  for (int c = 0; c < 5; ++c) {
    EXPECT_FLOAT_EQ(result.logits.at1(c), reference.at2(0, c)) << c;
  }
  EXPECT_GE(result.predicted, 0);
  EXPECT_LT(result.predicted, 5);
  EXPECT_EQ(result.backend, core::ExecBackend::kFloat);
  EXPECT_GE(result.batch_size, 1);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(InferenceEngine, BatchingIsDeterministicAcrossArrivalOrderAndSplit) {
  models::Network net = make_net(2);
  util::Rng rng(22);
  const int kImages = 10;
  std::vector<core::Tensor> images;
  images.reserve(kImages);
  for (int i = 0; i < kImages; ++i) images.push_back(random_image(rng));

  auto serve = [&](int max_batch, bool reversed) {
    EngineConfig cfg;
    cfg.max_batch = max_batch;
    cfg.max_delay = std::chrono::microseconds(2000);
    InferenceEngine engine(net, cfg);
    std::vector<std::future<InferenceResult>> futures(kImages);
    for (int i = 0; i < kImages; ++i) {
      const int idx = reversed ? kImages - 1 - i : i;
      futures[static_cast<std::size_t>(idx)] =
          engine.submit(images[static_cast<std::size_t>(idx)]);
    }
    std::vector<InferenceResult> results;
    results.reserve(kImages);
    for (auto& f : futures) results.push_back(f.get());
    return results;
  };

  const auto batched = serve(4, /*reversed=*/false);
  const auto singles = serve(1, /*reversed=*/true);

  for (int i = 0; i < kImages; ++i) {
    const auto& a = batched[static_cast<std::size_t>(i)];
    const auto& b = singles[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.predicted, b.predicted) << "image " << i;
    ASSERT_TRUE(a.logits.same_shape(b.logits));
    for (std::size_t c = 0; c < a.logits.numel(); ++c) {
      EXPECT_FLOAT_EQ(a.logits.data()[c], b.logits.data()[c])
          << "image " << i << " logit " << c;
    }
  }
}

TEST(InferenceEngine, FormsFullBatchesUnderBurst) {
  models::Network net = make_net(3);
  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay = std::chrono::seconds(2);  // flush only on full batches
  InferenceEngine engine(net, cfg);

  util::Rng rng(33);
  core::Tensor batch({8, 3, 16, 16});
  for (std::size_t i = 0; i < batch.numel(); ++i) {
    batch.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  auto futures = engine.submit_batch(batch);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().batch_size, 4);
  }
  const auto stats = engine.stats();
  ASSERT_EQ(stats.backends.size(), 1u);
  EXPECT_EQ(stats.backends[0].requests, 8u);
  EXPECT_EQ(stats.backends[0].batches, 2u);
  EXPECT_DOUBLE_EQ(stats.backends[0].mean_batch_size(), 4.0);
}

TEST(InferenceEngine, DeadlineFlushesPartialBatch) {
  models::Network net = make_net(4);
  EngineConfig cfg;
  cfg.max_batch = 64;  // never fills
  cfg.max_delay = std::chrono::microseconds(20000);
  InferenceEngine engine(net, cfg);

  util::Rng rng(44);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(engine.submit(random_image(rng)));
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_EQ(r.batch_size, 3);
    // The batch had to wait for the deadline, not a full window.
    EXPECT_GE(r.total_seconds, 0.015);
  }
  EXPECT_EQ(engine.stats().backends[0].batches, 1u);
}

TEST(InferenceEngine, ShutdownDrainsInFlightRequests) {
  models::Network net = make_net(5);
  EngineConfig cfg;
  cfg.max_batch = 64;
  cfg.max_delay = std::chrono::seconds(30);  // would park without drain
  InferenceEngine engine(net, cfg);

  util::Rng rng(55);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(engine.submit(random_image(rng)));
  engine.shutdown();  // must flush the queue immediately and serve it

  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_GE(r.predicted, 0);
    EXPECT_EQ(r.batch_size, 5);
  }
  EXPECT_EQ(engine.stats().requests(), 5u);
  EXPECT_THROW(engine.submit(random_image(rng)), odenet::Error);
}

TEST(InferenceEngine, DestructorFulfillsEveryFuture) {
  models::Network net = make_net(6);
  util::Rng rng(66);
  std::vector<std::future<InferenceResult>> futures;
  {
    EngineConfig cfg;
    cfg.max_batch = 64;
    cfg.max_delay = std::chrono::seconds(30);
    InferenceEngine engine(net, cfg);
    for (int i = 0; i < 3; ++i) {
      futures.push_back(engine.submit(random_image(rng)));
    }
  }  // ~InferenceEngine drains
  for (auto& f : futures) {
    EXPECT_NO_THROW((void)f.get());
  }
}

TEST(InferenceEngine, BackendParityWithinQuantizationTolerance) {
  models::Network net = make_net(7);
  EngineConfig cfg;
  cfg.max_batch = 1;  // per-image, so batch-stat BN sees one image everywhere
  cfg.max_delay = std::chrono::microseconds(500);
  BackendConfig float_ref;
  float_ref.backend = core::ExecBackend::kFloat;
  float_ref.per_image_batch_norm = true;  // align with the PL's BN semantics
  BackendConfig fixed_cpu;
  fixed_cpu.backend = core::ExecBackend::kFixed;
  fixed_cpu.per_image_batch_norm = true;
  BackendConfig fpga_sim;
  fpga_sim.backend = core::ExecBackend::kFpgaSim;  // offloads every ODE stage
  cfg.backends = {float_ref, fixed_cpu, fpga_sim};
  InferenceEngine engine(net, cfg);
  ASSERT_EQ(engine.backend_count(), 3u);

  util::Rng rng(77);
  core::Tensor image = random_image(rng);
  InferenceResult rf = engine.submit(image, 0).get();
  InferenceResult rq = engine.submit(image, 1).get();
  InferenceResult ra = engine.submit(image, 2).get();

  EXPECT_LT(max_abs_diff(rf.logits, rq.logits), 1e-3);   // Q11.20 activations
  EXPECT_LT(max_abs_diff(rf.logits, ra.logits), 0.15);   // full PL datapath
  EXPECT_EQ(rf.pl_cycles, 0u);
  EXPECT_EQ(rq.pl_cycles, 0u);
  EXPECT_GT(ra.pl_cycles, 0u);
}

TEST(InferenceEngine, StatsFoldPlCyclesAndEmitJson) {
  models::Network net = make_net(8);
  EngineConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay = std::chrono::microseconds(500);
  BackendConfig fpga_sim;
  fpga_sim.backend = core::ExecBackend::kFpgaSim;
  cfg.backends = {fpga_sim};
  InferenceEngine engine(net, cfg);

  util::Rng rng(88);
  std::vector<std::future<InferenceResult>> futures;
  std::uint64_t result_cycles = 0;
  for (int i = 0; i < 4; ++i) futures.push_back(engine.submit(random_image(rng)));
  for (auto& f : futures) result_cycles += f.get().pl_cycles;

  const auto stats = engine.stats();
  ASSERT_EQ(stats.backends.size(), 1u);
  EXPECT_EQ(stats.backends[0].requests, 4u);
  EXPECT_GT(stats.pl_cycles(), 0u);
  // Per-result shares are the batch total split evenly; integer division
  // can only lose remainders, never invent cycles.
  EXPECT_LE(result_cycles, stats.pl_cycles());
  EXPECT_GT(result_cycles, stats.pl_cycles() / 2);

  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"images_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"fpga_sim\""), std::string::npos);
  EXPECT_NE(json.find("\"pl_cycles\""), std::string::npos);
}
