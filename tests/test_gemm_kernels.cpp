// SIMD GEMM micro-kernels and the packed-weight caches built on them
// (core/gemm_kernels.hpp, the tiled GEMMs in core/im2col.hpp):
//  * every tiled GEMM entry point against a double-accumulation reference
//    across a geometry sweep that exercises full tiles and ragged edges;
//  * ISA parity — the AVX2 kernels against the scalar fallback on the
//    same inputs (skipped on hosts without usable AVX2+FMA);
//  * thread-count invariance — the panel split never changes any tile's
//    summation order, so results are BITWISE equal across pool sizes;
//  * the once-per-version weight-packing caches of Conv2d and Linear
//    (hit on repeat calls, rebuild on version change / invalidation /
//    unversioned weights).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/conv2d.hpp"
#include "core/gemm_kernels.hpp"
#include "core/im2col.hpp"
#include "core/init.hpp"
#include "core/linear.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace odenet::core;
namespace ou = odenet::util;

namespace {

std::vector<float> random_matrix(int rows, int cols, ou::Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) v = static_cast<float>(rng.normal(0.0, 1.0));
  return m;
}

/// C[m,n] = A[m,k] * B[k,n] accumulated in double — the ground truth the
/// float kernels are compared against.
std::vector<float> reference_gemm(const std::vector<float>& a,
                                  const std::vector<float>& b, int m, int k,
                                  int n) {
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[static_cast<std::size_t>(i) * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

/// B[k,n] -> B^T stored [n,k] row-major (the gemm_bt/pack_gemm_b_nt input).
std::vector<float> transpose(const std::vector<float>& b, int k, int n) {
  std::vector<float> bt(static_cast<std::size_t>(n) * k);
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) bt[static_cast<std::size_t>(j) * k + p] = b[p * n + j];
  }
  return bt;
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = std::max(diff,
                    std::fabs(static_cast<double>(a[i]) - b[i]));
  }
  return diff;
}

/// Error scale: k-length float dot products drift ~sqrt(k) ULPs.
double tol_for(int k) { return 1e-5 * std::sqrt(static_cast<double>(k)) + 1e-6; }

struct Shape {
  int m, k, n;
  std::string str() const {
    return "m=" + std::to_string(m) + " k=" + std::to_string(k) +
           " n=" + std::to_string(n);
  }
};

/// Full tiles, ragged rows (m % 4), ragged cols (n % 16), sub-tile sizes,
/// panel boundaries (n near the 256-wide packing panel) and a long-n case
/// shaped like a batched lowering.
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 7},     {4, 8, 16},   {5, 16, 17},  {8, 9, 32},
    {12, 64, 48}, {17, 27, 100}, {20, 36, 255}, {16, 32, 256}, {7, 33, 257},
    {64, 36, 585}, {100, 7, 130},
};

void run_all_tiled(const Shape& s, ou::Rng& rng) {
  SCOPED_TRACE(s.str());
  const auto a = random_matrix(s.m, s.k, rng);
  const auto b = random_matrix(s.k, s.n, rng);
  const auto bt = transpose(b, s.k, s.n);
  const auto want = reference_gemm(a, b, s.m, s.k, s.n);
  const double tol = tol_for(s.k);
  const std::size_t cn = want.size();

  std::vector<float> c(cn, -7.0f);
  gemm_tiled(a.data(), b.data(), c.data(), s.m, s.k, s.n, false);
  EXPECT_LE(max_abs_diff(c, want), tol) << "gemm_tiled";

  PackedGemmA pa;
  pack_gemm_a(a.data(), s.m, s.k, pa);
  std::fill(c.begin(), c.end(), -7.0f);
  gemm_tiled_pa(pa, b.data(), c.data(), s.n, false);
  EXPECT_LE(max_abs_diff(c, want), tol) << "gemm_tiled_pa";

  PackedGemmB pb;
  pack_gemm_b_nt(bt.data(), s.k, s.n, pb);
  std::fill(c.begin(), c.end(), -7.0f);
  gemm_tiled_pb(a.data(), pb, c.data(), s.m, false);
  EXPECT_LE(max_abs_diff(c, want), tol) << "gemm_tiled_pb";

  std::fill(c.begin(), c.end(), -7.0f);
  gemm_bt_tiled(a.data(), bt.data(), c.data(), s.m, s.k, s.n, false);
  EXPECT_LE(max_abs_diff(c, want), tol) << "gemm_bt_tiled";

  // accumulate=true adds onto the existing C.
  std::vector<float> acc(cn, 1.5f);
  gemm_tiled_pa(pa, b.data(), acc.data(), s.n, true);
  std::vector<float> want_acc(cn);
  for (std::size_t i = 0; i < cn; ++i) want_acc[i] = want[i] + 1.5f;
  EXPECT_LE(max_abs_diff(acc, want_acc), tol) << "gemm_tiled_pa accumulate";
}

/// RAII scalar-forcing so a failing EXPECT cannot leak the override.
struct ForceScalar {
  explicit ForceScalar(bool on) { gemm_force_scalar(on); }
  ~ForceScalar() { gemm_force_scalar(false); }
};

/// RAII kernel-pool + parallel-threshold override.
struct PoolOverride {
  explicit PoolOverride(ou::ThreadPool* pool, std::size_t min_flops) {
    set_kernel_pool(pool);
    gemm_set_parallel_min_flops(min_flops);
  }
  ~PoolOverride() {
    set_kernel_pool(nullptr);
    gemm_set_parallel_min_flops(0);
  }
};

}  // namespace

TEST(GemmKernels, DispatchIsConsistent) {
  const GemmKernels& k = active_gemm_kernels();
  ASSERT_NE(k.tile4x16, nullptr);
  ASSERT_NE(k.dot, nullptr);
  EXPECT_STREQ(k.isa, gemm_isa_name());
  if (gemm_avx2_usable()) {
    EXPECT_TRUE(gemm_avx2_compiled());
    EXPECT_STREQ(gemm_isa_name(), "avx2+fma");
  } else {
    EXPECT_STREQ(gemm_isa_name(), "scalar");
  }
  ForceScalar forced(true);
  EXPECT_TRUE(gemm_forced_scalar());
  EXPECT_STREQ(gemm_isa_name(), "scalar");
}

TEST(GemmKernels, TiledVariantsMatchReferenceAcrossGeometries) {
  ou::Rng rng(7);
  for (const Shape& s : kShapes) run_all_tiled(s, rng);
}

TEST(GemmKernels, ScalarFallbackMatchesReferenceAcrossGeometries) {
  ForceScalar forced(true);
  ou::Rng rng(8);
  for (const Shape& s : kShapes) run_all_tiled(s, rng);
}

TEST(GemmKernels, IsaParityAvx2VsScalar) {
  if (!gemm_avx2_usable()) {
    GTEST_SKIP() << "AVX2+FMA kernels not usable on this host";
  }
  ou::Rng rng(9);
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(s.str());
    const auto a = random_matrix(s.m, s.k, rng);
    const auto b = random_matrix(s.k, s.n, rng);
    const auto bt = transpose(b, s.k, s.n);
    const double tol = tol_for(s.k);
    const std::size_t cn = static_cast<std::size_t>(s.m) * s.n;

    std::vector<float> vec(cn), sca(cn);
    gemm_tiled(a.data(), b.data(), vec.data(), s.m, s.k, s.n, false);
    {
      ForceScalar forced(true);
      gemm_tiled(a.data(), b.data(), sca.data(), s.m, s.k, s.n, false);
    }
    EXPECT_LE(max_abs_diff(vec, sca), tol) << "gemm_tiled isa parity";

    gemm_bt_tiled(a.data(), bt.data(), vec.data(), s.m, s.k, s.n, false);
    {
      ForceScalar forced(true);
      gemm_bt_tiled(a.data(), bt.data(), sca.data(), s.m, s.k, s.n, false);
    }
    EXPECT_LE(max_abs_diff(vec, sca), tol) << "gemm_bt_tiled isa parity";
  }
}

TEST(GemmKernels, ThreadCountInvarianceIsBitwise) {
  // Each 4x16 output tile's k loop runs entirely on one worker, so the
  // panel split is pure work division: 1, 2 and 8 threads must produce
  // BITWISE identical results (threshold forced to 0 so even the smallest
  // shapes take the parallel path).
  ou::Rng rng(10);
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(s.str());
    const auto a = random_matrix(s.m, s.k, rng);
    const auto b = random_matrix(s.k, s.n, rng);
    const auto bt = transpose(b, s.k, s.n);
    const std::size_t cn = static_cast<std::size_t>(s.m) * s.n;

    std::vector<float> base_pa(cn), base_bt(cn);
    {
      ou::ThreadPool one(1);
      PoolOverride ov(&one, 1);
      PackedGemmA pa;
      pack_gemm_a(a.data(), s.m, s.k, pa);
      gemm_tiled_pa(pa, b.data(), base_pa.data(), s.n, false);
      gemm_bt_tiled(a.data(), bt.data(), base_bt.data(), s.m, s.k, s.n,
                    false);
    }
    for (std::size_t workers : {2u, 8u}) {
      ou::ThreadPool pool(workers);
      PoolOverride ov(&pool, 1);
      std::vector<float> got(cn, -3.0f);
      PackedGemmA pa;
      pack_gemm_a(a.data(), s.m, s.k, pa);
      gemm_tiled_pa(pa, b.data(), got.data(), s.n, false);
      EXPECT_EQ(0, std::memcmp(got.data(), base_pa.data(),
                               cn * sizeof(float)))
          << "gemm_tiled_pa differs at " << workers << " workers";
      gemm_bt_tiled(a.data(), bt.data(), got.data(), s.m, s.k, s.n, false);
      EXPECT_EQ(0, std::memcmp(got.data(), base_bt.data(),
                               cn * sizeof(float)))
          << "gemm_bt_tiled differs at " << workers << " workers";
    }
  }
}

TEST(GemmKernels, Conv2dPacksOncePerWeightVersion) {
  ou::Rng rng(11);
  Conv2d conv({.in_channels = 3, .out_channels = 8});
  init_conv(conv, rng);
  conv.set_training(false);

  Tensor x({2, 3, 8, 8});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }

  // Unversioned weights (training default): every call repacks.
  EXPECT_EQ(conv.weight_version(), 0u);
  (void)conv.forward(x);
  (void)conv.forward(x);
  EXPECT_EQ(conv.weight_packs(), 2u);

  // Versioned: one pack, then cache hits.
  conv.set_weight_version(41);
  (void)conv.forward(x);
  (void)conv.forward(x);
  (void)conv.forward(x);
  EXPECT_EQ(conv.weight_packs(), 3u);

  // New version -> one repack.
  conv.set_weight_version(42);
  (void)conv.forward(x);
  (void)conv.forward(x);
  EXPECT_EQ(conv.weight_packs(), 4u);

  // Explicit invalidation -> one repack even at the same version.
  conv.invalidate_packed_weights();
  (void)conv.forward(x);
  (void)conv.forward(x);
  EXPECT_EQ(conv.weight_packs(), 5u);
}

TEST(GemmKernels, LinearPacksOncePerWeightVersion) {
  ou::Rng rng(12);
  Linear fc(6, 4);
  for (std::size_t i = 0; i < fc.weight().value.numel(); ++i) {
    fc.weight().value.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  Tensor x({3, 6});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }

  EXPECT_EQ(fc.weight_version(), 0u);
  (void)fc.forward(x);
  (void)fc.forward(x);
  EXPECT_EQ(fc.weight_packs(), 2u);

  fc.set_weight_version(9);
  (void)fc.forward(x);
  (void)fc.forward(x);
  EXPECT_EQ(fc.weight_packs(), 3u);

  fc.set_weight_version(10);
  (void)fc.forward(x);
  EXPECT_EQ(fc.weight_packs(), 4u);

  fc.invalidate_packed_weights();
  (void)fc.forward(x);
  EXPECT_EQ(fc.weight_packs(), 5u);
}

TEST(GemmKernels, PackedCacheStillCorrectAfterRepack) {
  // The cached pack must track the live weights: forward after an SGD-like
  // in-place weight mutation with version 0 re-reads the new values.
  ou::Rng rng(13);
  Linear fc(5, 3);
  for (std::size_t i = 0; i < fc.weight().value.numel(); ++i) {
    fc.weight().value.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  Tensor x({2, 5});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  Tensor before = fc.forward(x);
  for (std::size_t i = 0; i < fc.weight().value.numel(); ++i) {
    fc.weight().value.data()[i] += 0.25f;
  }
  Tensor after = fc.forward(x);
  double diff = 0.0;
  for (std::size_t i = 0; i < before.numel(); ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(before.data()[i]) -
                                    after.data()[i]));
  }
  EXPECT_GT(diff, 0.0) << "version-0 cache served stale weights";
}
