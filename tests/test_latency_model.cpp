// End-to-end latency model vs the paper's Table 5, plus the partition
// explorer.
#include <gtest/gtest.h>

#include "sched/explorer.hpp"
#include "sched/latency_model.hpp"

using namespace odenet::sched;
using namespace odenet::models;

namespace {
LatencyRow eval(Arch arch, int n, StageId target) {
  LatencyModel model;
  return model.evaluate(make_spec(arch, n), Partition::single(target, 16));
}
}  // namespace

struct Table5Case {
  Arch arch;
  int n;
  StageId target;
  double total_wo;     // s
  double target_wo;    // s
  double ratio_pct;    // %
  double target_w;     // s
  double total_w;      // s
  double speedup;
};

class Table5Rows : public ::testing::TestWithParam<Table5Case> {};

TEST_P(Table5Rows, AllColumnsWithinTolerance) {
  const auto p = GetParam();
  LatencyRow row = eval(p.arch, p.n, p.target);
  ASSERT_EQ(row.targets.size(), 1u);
  const auto& t = row.targets[0];
  EXPECT_NEAR(row.total_without_pl, p.total_wo, p.total_wo * 0.06);
  EXPECT_NEAR(t.seconds_without_pl, p.target_wo,
              std::max(p.target_wo * 0.05, 0.01));
  EXPECT_NEAR(t.ratio_of_total * 100.0, p.ratio_pct, 2.0);
  EXPECT_NEAR(t.seconds_with_pl, p.target_w,
              std::max(p.target_w * 0.07, 0.012));
  EXPECT_NEAR(row.total_with_pl, p.total_w, p.total_w * 0.07);
  EXPECT_NEAR(row.overall_speedup, p.speedup, p.speedup * 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table5Rows,
    ::testing::Values(
        // rODENet-1: offload layer1.
        Table5Case{Arch::kROdeNet1, 20, StageId::kLayer1, 0.57, 0.44, 76.89,
                   0.15, 0.28, 1.99},
        Table5Case{Arch::kROdeNet1, 32, StageId::kLayer1, 0.94, 0.81, 86.06,
                   0.29, 0.42, 2.26},
        Table5Case{Arch::kROdeNet1, 44, StageId::kLayer1, 1.30, 1.17, 89.91,
                   0.42, 0.55, 2.37},
        Table5Case{Arch::kROdeNet1, 56, StageId::kLayer1, 1.67, 1.54, 92.14,
                   0.55, 0.68, 2.45},
        // rODENet-2: offload layer2_2.
        Table5Case{Arch::kROdeNet2, 20, StageId::kLayer2_2, 0.52, 0.33, 63.82,
                   0.11, 0.30, 1.75},
        Table5Case{Arch::kROdeNet2, 56, StageId::kLayer2_2, 1.52, 1.33, 87.46,
                   0.44, 0.63, 2.40},
        // rODENet-3: offload layer3_2 (the paper's headline rows).
        Table5Case{Arch::kROdeNet3, 20, StageId::kLayer3_2, 0.54, 0.35, 64.48,
                   0.10, 0.29, 1.85},
        Table5Case{Arch::kROdeNet3, 32, StageId::kLayer3_2, 0.88, 0.69, 78.44,
                   0.20, 0.39, 2.26},
        Table5Case{Arch::kROdeNet3, 44, StageId::kLayer3_2, 1.23, 1.04, 84.44,
                   0.30, 0.49, 2.50},
        Table5Case{Arch::kROdeNet3, 56, StageId::kLayer3_2, 1.57, 1.38, 87.87,
                   0.40, 0.59, 2.66},
        // ODENet-3: full ODENet, layer3_2 on PL.
        Table5Case{Arch::kOdeNet, 20, StageId::kLayer3_2, 0.56, 0.12, 21.24,
                   0.03, 0.47, 1.18},
        Table5Case{Arch::kOdeNet, 56, StageId::kLayer3_2, 1.60, 0.46, 28.98,
                   0.13, 1.27, 1.26},
        // Hybrid-3.
        Table5Case{Arch::kHybrid3, 20, StageId::kLayer3_2, 0.53, 0.12, 22.38,
                   0.03, 0.44, 1.19},
        Table5Case{Arch::kHybrid3, 56, StageId::kLayer3_2, 1.56, 0.46, 29.64,
                   0.13, 1.23, 1.27}));

TEST(LatencyModel, ResNetPureSoftwareRow) {
  LatencyModel model;
  LatencyRow row = model.evaluate(make_spec(Arch::kResNet, 56),
                                  Partition::none());
  EXPECT_EQ(row.offload_target, "-");
  EXPECT_EQ(row.total_with_pl, row.total_without_pl);
  EXPECT_EQ(row.overall_speedup, 1.0);
  EXPECT_TRUE(row.targets.empty());
}

TEST(LatencyModel, ROdeNet12OffloadsTwoStages) {
  // rODENet-1+2-56: layer1 0.81 s / layer2_2 0.66 s targets, speedup 2.52.
  LatencyModel model;
  Partition p;
  p.offloaded = {StageId::kLayer1, StageId::kLayer2_2};
  LatencyRow row = model.evaluate(make_spec(Arch::kROdeNet12, 56), p);
  ASSERT_EQ(row.targets.size(), 2u);
  EXPECT_EQ(row.targets[0].stage, StageId::kLayer1);
  EXPECT_NEAR(row.targets[0].seconds_without_pl, 0.81, 0.05);
  EXPECT_NEAR(row.targets[1].seconds_without_pl, 0.66, 0.04);
  EXPECT_NEAR(row.overall_speedup, 2.52, 0.13);
  EXPECT_EQ(row.offload_target, "layer1 / layer2_2");
}

TEST(LatencyModel, PaperHeadlineClaim) {
  // rODENet-3-56 with layer3_2 on PL is ~2.66x faster than its own pure
  // software execution and ~2.67x faster than software ResNet-56.
  LatencyModel model;
  LatencyRow r3 = eval(Arch::kROdeNet3, 56, StageId::kLayer3_2);
  const double vs_resnet =
      model.evaluate(make_spec(Arch::kResNet, 56), Partition::none())
          .total_without_pl /
      r3.total_with_pl;
  EXPECT_NEAR(r3.overall_speedup, 2.66, 0.15);
  EXPECT_NEAR(vs_resnet, 2.67, 0.15);
}

TEST(LatencyModel, SpeedupGrowsWithN) {
  // The heavier the offloaded stage's share, the better the speedup
  // (Table 5's monotone trend for every rODENet).
  double prev = 0.0;
  for (int n : {20, 32, 44, 56}) {
    LatencyRow row = eval(Arch::kROdeNet3, n, StageId::kLayer3_2);
    EXPECT_GT(row.overall_speedup, prev) << "N=" << n;
    prev = row.overall_speedup;
  }
}

TEST(LatencyModel, LowerParallelismIsSlower) {
  LatencyModel model;
  NetworkSpec spec = make_spec(Arch::kROdeNet3, 56);
  LatencyRow x16 = model.evaluate(spec, Partition::single(StageId::kLayer3_2,
                                                          16));
  LatencyRow x4 = model.evaluate(spec, Partition::single(StageId::kLayer3_2,
                                                         4));
  EXPECT_LT(x16.total_with_pl, x4.total_with_pl);
  EXPECT_GT(x16.overall_speedup, x4.overall_speedup);
}

TEST(LatencyModel, RejectsOffloadingStackedStage) {
  // ResNet's layer3_2 stacks (N-8)/6 instances; there is no single block
  // to put on the PL.
  LatencyModel model;
  EXPECT_THROW(model.evaluate(make_spec(Arch::kResNet, 56),
                              Partition::single(StageId::kLayer3_2)),
               odenet::Error);
}

TEST(LatencyModel, RejectsOffloadingRemovedStage) {
  LatencyModel model;
  EXPECT_THROW(model.evaluate(make_spec(Arch::kROdeNet3, 56),
                              Partition::single(StageId::kLayer2_2)),
               odenet::Error);
}

TEST(Explorer, BestPartitionForROdeNet3IsLayer32AtX16) {
  LatencyModel model;
  odenet::fpga::ResourceModel resources;
  PartitionExplorer explorer(model, resources);
  Candidate best = explorer.best(make_spec(Arch::kROdeNet3, 56));
  // layer3_2 saturates BRAM on its own (140/140), so no combination with
  // layer1 fits — the explorer must pick exactly the paper's partition:
  // layer3_2 alone at the fastest timing-feasible parallelism.
  EXPECT_EQ(best.partition.offloaded.size(), 1u);
  EXPECT_TRUE(best.partition.offloaded.count(StageId::kLayer3_2));
  EXPECT_EQ(best.partition.parallelism, 16);
  EXPECT_TRUE(best.fits);
}

TEST(Explorer, TimingFilterExcludesX32) {
  LatencyModel model;
  odenet::fpga::ResourceModel resources;
  PartitionExplorer explorer(model, resources);
  auto all = explorer.enumerate(make_spec(Arch::kROdeNet3, 56));
  for (const auto& c : all) {
    if (!c.partition.offloaded.empty()) {
      EXPECT_NE(c.partition.parallelism, 32);
    }
  }
}

TEST(Explorer, EnumeratesAllSubsets) {
  LatencyModel model;
  odenet::fpga::ResourceModel resources;
  PartitionExplorer explorer(model, resources);
  // rODENet-1+2 has two offloadable stages -> subsets {}, {1}, {2}, {1,2};
  // non-empty subsets x 4 feasible parallelism choices + 1 empty.
  auto all = explorer.enumerate(make_spec(Arch::kROdeNet12, 56));
  EXPECT_EQ(all.size(), 1u + 3u * 4u);
}

TEST(Explorer, InfeasibleCombosReported) {
  // layer1 + layer2_2 + layer3_2 is only possible for ODENet; BRAM for
  // layer3_2 alone saturates the device, so the triple must not fit.
  LatencyModel model;
  odenet::fpga::ResourceModel resources;
  PartitionExplorer explorer(model, resources);
  auto all = explorer.enumerate(make_spec(Arch::kOdeNet, 56));
  bool found_infeasible_triple = false;
  for (const auto& c : all) {
    if (c.partition.offloaded.size() == 3 && !c.fits) {
      found_infeasible_triple = true;
    }
  }
  EXPECT_TRUE(found_infeasible_triple);
}

// ---- ServiceTimeEwma: the measured complement to the model ------------

TEST(ServiceTimeEwma, ColdUntilWarmAfterSamplesThenReports) {
  ServiceTimeEwma ewma(0.2, /*warm_after=*/3);
  EXPECT_FALSE(ewma.warm());
  EXPECT_DOUBLE_EQ(ewma.seconds_per_request(), 0.0);

  ewma.observe(4e-3, 2);  // 2 ms/request
  ewma.observe(2e-3, 1);
  EXPECT_FALSE(ewma.warm());
  EXPECT_DOUBLE_EQ(ewma.seconds_per_request(), 0.0);  // still cold

  ewma.observe(2e-3, 1);
  EXPECT_TRUE(ewma.warm());
  EXPECT_EQ(ewma.samples(), 3u);
  EXPECT_NEAR(ewma.seconds_per_request(), 2e-3, 1e-9);
}

TEST(ServiceTimeEwma, FirstSampleSeedsThenExponentialBlend) {
  ServiceTimeEwma ewma(0.5, /*warm_after=*/1);
  ewma.observe(8e-3, 1);  // seed, not decayed from zero
  EXPECT_NEAR(ewma.seconds_per_request(), 8e-3, 1e-12);
  ewma.observe(4e-3, 1);  // 0.5*4 + 0.5*8 = 6 ms
  EXPECT_NEAR(ewma.seconds_per_request(), 6e-3, 1e-12);
  ewma.observe(4e-3, 2);  // 0.5*2 + 0.5*6 = 4 ms
  EXPECT_NEAR(ewma.seconds_per_request(), 4e-3, 1e-12);
}

TEST(ServiceTimeEwma, ConvergesToStepChange) {
  ServiceTimeEwma ewma(0.2, 1);
  for (int i = 0; i < 50; ++i) ewma.observe(1e-3, 1);
  EXPECT_NEAR(ewma.seconds_per_request(), 1e-3, 1e-6);
  // Service time doubles (e.g. host contention): the EWMA tracks the new
  // level geometrically.
  for (int i = 0; i < 50; ++i) ewma.observe(2e-3, 1);
  EXPECT_NEAR(ewma.seconds_per_request(), 2e-3, 1e-6);
}

TEST(ServiceTimeEwma, IgnoresDegenerateSamplesAndResets) {
  ServiceTimeEwma ewma(0.2, 1);
  ewma.observe(0.0, 4);    // no time
  ewma.observe(1e-3, 0);   // no requests
  ewma.observe(-1e-3, 1);  // negative time
  EXPECT_EQ(ewma.samples(), 0u);
  EXPECT_FALSE(ewma.warm());

  ewma.observe(3e-3, 1);
  EXPECT_TRUE(ewma.warm());
  ewma.reset();
  EXPECT_FALSE(ewma.warm());
  EXPECT_DOUBLE_EQ(ewma.seconds_per_request(), 0.0);
}

TEST(ServiceTimeEwma, RejectsInvalidParameters) {
  EXPECT_THROW(ServiceTimeEwma(0.0, 1), odenet::Error);
  EXPECT_THROW(ServiceTimeEwma(1.5, 1), odenet::Error);
  EXPECT_THROW(ServiceTimeEwma(0.2, 0), odenet::Error);
}
