// ODE solvers: exact solutions, convergence orders (the defining property
// of each method), backward-time integration, Dopri5 adaptivity.
#include <gtest/gtest.h>

#include <cmath>

#include "solver/ode.hpp"

using namespace odenet::solver;
using odenet::core::Tensor;

namespace {

/// dz/dt = lambda * z  ->  z(t) = z0 * exp(lambda * t).
FunctionDynamics exp_dynamics(float lambda) {
  return FunctionDynamics([lambda](const Tensor& z, float) {
    Tensor out = z;
    out.scale(lambda);
    return out;
  });
}

/// 2-D rotation: dz/dt = [-z1, z0] — norm-preserving circular motion.
FunctionDynamics rotation_dynamics() {
  return FunctionDynamics([](const Tensor& z, float) {
    Tensor out({2});
    out.at1(0) = -z.at1(1);
    out.at1(1) = z.at1(0);
    return out;
  });
}

/// Non-autonomous: dz/dt = t  ->  z(t) = z0 + t^2/2. Exposes wrong stage
/// time handling (a solver that ignores t fails this).
FunctionDynamics time_dynamics() {
  return FunctionDynamics([](const Tensor& z, float t) {
    Tensor out(z.shape());
    out.fill(t);
    return out;
  });
}

double solve_exp_error(Method m, int steps, float lambda = -1.0f,
                       float t1 = 1.0f) {
  auto f = exp_dynamics(lambda);
  Tensor z0({1});
  z0.at1(0) = 1.0f;
  SolveOptions opts{.method = m, .steps = steps};
  Tensor z1 = ode_solve(f, z0, 0.0f, t1, opts);
  const double exact = std::exp(static_cast<double>(lambda) * t1);
  return std::fabs(z1.at1(0) - exact);
}

}  // namespace

TEST(Solvers, EulerMatchesClosedFormRecurrence) {
  // Euler on dz/dt = lambda z gives exactly (1 + lambda*h)^n.
  auto f = exp_dynamics(-0.5f);
  Tensor z0({1});
  z0.at1(0) = 2.0f;
  SolveOptions opts{.method = Method::kEuler, .steps = 10};
  Tensor z1 = ode_solve(f, z0, 0.0f, 1.0f, opts);
  const double expected = 2.0 * std::pow(1.0 - 0.05, 10);
  EXPECT_NEAR(z1.at1(0), expected, 1e-5);
}

struct OrderCase {
  Method method;
  double expected_order;
  // Coarse step counts so float32 rounding stays far below the truncation
  // error (RK4 at 16 steps already sits on the rounding floor).
  int steps;
};

class ConvergenceOrder : public ::testing::TestWithParam<OrderCase> {};

TEST_P(ConvergenceOrder, ErrorShrinksAtTheMethodOrder) {
  const auto p = GetParam();
  // Error ratio between N and 2N steps approaches 2^order.
  const double e1 = solve_exp_error(p.method, p.steps);
  const double e2 = solve_exp_error(p.method, 2 * p.steps);
  const double measured_order = std::log2(e1 / e2);
  EXPECT_NEAR(measured_order, p.expected_order, 0.45)
      << "e1=" << e1 << " e2=" << e2;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ConvergenceOrder,
    ::testing::Values(OrderCase{Method::kEuler, 1.0, 16},
                      OrderCase{Method::kHeun, 2.0, 16},
                      OrderCase{Method::kRk4, 4.0, 2}));

TEST(Solvers, Rk4FarMoreAccurateThanEulerAtEqualSteps) {
  const double euler = solve_exp_error(Method::kEuler, 32);
  const double rk4 = solve_exp_error(Method::kRk4, 32);
  EXPECT_LT(rk4, euler * 1e-3);
}

TEST(Solvers, RotationReturnsToStartAfterFullPeriod) {
  auto f = rotation_dynamics();
  Tensor z0({2});
  z0.at1(0) = 1.0f;
  SolveOptions opts{.method = Method::kRk4, .steps = 100};
  const float two_pi = static_cast<float>(2.0 * 3.141592653589793);
  Tensor z1 = ode_solve(f, z0, 0.0f, two_pi, opts);
  EXPECT_NEAR(z1.at1(0), 1.0f, 1e-4f);
  EXPECT_NEAR(z1.at1(1), 0.0f, 1e-4f);
}

TEST(Solvers, NonAutonomousUsesStageTimes) {
  auto f = time_dynamics();
  Tensor z0({1});
  // z(2) = z0 + 2. Heun is exact for a linear-in-t integrand.
  SolveOptions heun{.method = Method::kHeun, .steps = 4};
  Tensor z_heun = ode_solve(f, z0, 0.0f, 2.0f, heun);
  EXPECT_NEAR(z_heun.at1(0), 2.0f, 1e-5f);

  SolveOptions euler{.method = Method::kEuler, .steps = 4};
  Tensor z_euler = ode_solve(f, z0, 0.0f, 2.0f, euler);
  // Left Riemann sum of t over [0,2] with h=0.5: (0+0.5+1.0+1.5)*0.5 = 1.5.
  EXPECT_NEAR(z_euler.at1(0), 1.5f, 1e-5f);
}

TEST(Solvers, BackwardIntegrationInvertsForward) {
  auto f = exp_dynamics(0.7f);
  Tensor z0({1});
  z0.at1(0) = 1.0f;
  SolveOptions opts{.method = Method::kRk4, .steps = 64};
  Tensor z1 = ode_solve(f, z0, 0.0f, 1.0f, opts);
  Tensor back = ode_solve(f, z1, 1.0f, 0.0f, opts);
  EXPECT_NEAR(back.at1(0), 1.0f, 1e-4f);
}

TEST(Solvers, TrajectoryHasStepsPlusOneStates) {
  auto f = exp_dynamics(-1.0f);
  Tensor z0({1});
  z0.at1(0) = 1.0f;
  std::vector<Tensor> traj;
  SolveOptions opts{.method = Method::kEuler, .steps = 5,
                    .trajectory = &traj};
  ode_solve(f, z0, 0.0f, 1.0f, opts);
  ASSERT_EQ(traj.size(), 6u);
  EXPECT_EQ(traj.front().at1(0), 1.0f);
}

TEST(Solvers, StatsCountFunctionEvals) {
  auto f = exp_dynamics(-1.0f);
  Tensor z0({1});
  SolveStats stats;
  SolveOptions opts{.method = Method::kRk4, .steps = 7};
  ode_solve(f, z0, 0.0f, 1.0f, opts, &stats);
  EXPECT_EQ(stats.steps_taken, 7);
  EXPECT_EQ(stats.function_evals, 28);
}

TEST(Solvers, MethodMetadata) {
  EXPECT_EQ(method_name(Method::kEuler), "euler");
  EXPECT_EQ(evals_per_step(Method::kHeun), 2);
  EXPECT_EQ(method_order(Method::kRk4), 4);
  EXPECT_EQ(method_order(Method::kDopri5), 5);
}

TEST(Solvers, RejectsZeroSteps) {
  auto f = exp_dynamics(-1.0f);
  Tensor z0({1});
  SolveOptions opts{.method = Method::kEuler, .steps = 0};
  EXPECT_THROW(ode_solve(f, z0, 0.0f, 1.0f, opts), odenet::Error);
}

TEST(Dopri5, SolvesToTolerance) {
  auto f = exp_dynamics(-2.0f);
  Tensor z0({1});
  z0.at1(0) = 1.0f;
  SolveStats stats;
  SolveOptions opts{.method = Method::kDopri5, .rtol = 1e-8, .atol = 1e-10};
  Tensor z1 = ode_solve(f, z0, 0.0f, 1.0f, opts, &stats);
  EXPECT_NEAR(z1.at1(0), std::exp(-2.0), 1e-6);
  EXPECT_GT(stats.steps_taken, 0);
}

TEST(Dopri5, LooserToleranceTakesFewerSteps) {
  auto f = rotation_dynamics();
  Tensor z0({2});
  z0.at1(0) = 1.0f;
  SolveStats tight, loose;
  SolveOptions t_opts{.method = Method::kDopri5, .rtol = 1e-9, .atol = 1e-11};
  SolveOptions l_opts{.method = Method::kDopri5, .rtol = 1e-3, .atol = 1e-5};
  ode_solve(f, z0, 0.0f, 6.0f, t_opts, &tight);
  ode_solve(f, z0, 0.0f, 6.0f, l_opts, &loose);
  EXPECT_LT(loose.steps_taken, tight.steps_taken);
}

TEST(Dopri5, BackwardTimeWorks) {
  auto f = exp_dynamics(1.0f);
  Tensor z1({1});
  z1.at1(0) = static_cast<float>(std::exp(1.0));
  SolveOptions opts{.method = Method::kDopri5, .rtol = 1e-8, .atol = 1e-10};
  Tensor z0 = ode_solve(f, z1, 1.0f, 0.0f, opts);
  EXPECT_NEAR(z0.at1(0), 1.0f, 1e-5f);
}

TEST(Dopri5, RespectsMaxSteps) {
  auto f = exp_dynamics(-500.0f);
  Tensor z0({1});
  z0.at1(0) = 1.0f;
  SolveOptions opts{.method = Method::kDopri5, .rtol = 1e-10, .atol = 1e-12,
                    .max_steps = 5};
  EXPECT_THROW(ode_solve(f, z0, 0.0f, 10.0f, opts), odenet::Error);
}

TEST(StepFunctions, SingleStepsMatchManualFormulas) {
  auto f = exp_dynamics(-1.0f);
  Tensor z({1});
  z.at1(0) = 1.0f;
  // Euler: 1 + h*(-1).
  EXPECT_NEAR(euler_step(f, z, 0.0f, 0.25f).at1(0), 0.75f, 1e-6f);
  // Heun: 1 + h/2*(k1 + k2), k1=-1, k2=-(1-0.25)=-0.75.
  EXPECT_NEAR(heun_step(f, z, 0.0f, 0.25f).at1(0),
              1.0f + 0.125f * (-1.0f - 0.75f), 1e-6f);
}
