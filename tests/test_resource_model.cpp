// Resource model vs the paper's Table 3 (exact) and the structural
// estimator (approximate, documented tolerance).
#include <gtest/gtest.h>

#include "fpga/resource_model.hpp"

using namespace odenet::fpga;
using odenet::models::StageId;

struct Table3Case {
  StageId layer;
  int parallelism;
  int bram, dsp, lut, ff;
  double bram_pct, dsp_pct, lut_pct, ff_pct;
};

class Table3 : public ::testing::TestWithParam<Table3Case> {};

TEST_P(Table3, PaperPointsExact) {
  const auto p = GetParam();
  auto point = ResourceModel::paper_point(p.layer, p.parallelism);
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(point->bram36, p.bram);
  EXPECT_EQ(point->dsp, p.dsp);
  EXPECT_EQ(point->lut, p.lut);
  EXPECT_EQ(point->ff, p.ff);
}

TEST_P(Table3, ReportPercentagesMatchPaper) {
  const auto p = GetParam();
  ResourceModel model;
  auto r = model.report(p.layer, p.parallelism);
  EXPECT_TRUE(r.from_paper_table);
  EXPECT_NEAR(r.bram_pct, p.bram_pct, 0.01);
  EXPECT_NEAR(r.dsp_pct, p.dsp_pct, 0.01);
  EXPECT_NEAR(r.lut_pct, p.lut_pct, 0.01);
  EXPECT_NEAR(r.ff_pct, p.ff_pct, 0.01);
  EXPECT_TRUE(r.timing_met);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table3,
    ::testing::Values(
        Table3Case{StageId::kLayer1, 1, 56, 8, 1486, 835, 40.00, 3.63, 2.79,
                   0.78},
        Table3Case{StageId::kLayer1, 4, 56, 20, 2992, 1358, 40.00, 9.09, 5.62,
                   1.28},
        Table3Case{StageId::kLayer1, 8, 56, 36, 4740, 2058, 40.00, 16.36,
                   8.91, 1.93},
        Table3Case{StageId::kLayer1, 16, 64, 68, 8994, 4145, 45.71, 30.91,
                   16.91, 3.90},
        Table3Case{StageId::kLayer2_2, 1, 56, 8, 1482, 833, 40.00, 3.63, 2.79,
                   0.78},
        Table3Case{StageId::kLayer2_2, 4, 56, 20, 2946, 1346, 40.00, 9.09,
                   5.53, 1.27},
        Table3Case{StageId::kLayer2_2, 8, 56, 36, 4737, 2032, 40.00, 16.36,
                   8.90, 1.91},
        Table3Case{StageId::kLayer2_2, 16, 56, 68, 8844, 4873, 40.00, 30.91,
                   16.62, 4.58},
        Table3Case{StageId::kLayer3_2, 1, 140, 8, 1692, 927, 100.00, 3.63,
                   3.18, 0.87},
        Table3Case{StageId::kLayer3_2, 4, 140, 20, 3048, 1411, 100.00, 9.09,
                   5.73, 1.33},
        Table3Case{StageId::kLayer3_2, 8, 140, 36, 4907, 2059, 100.00, 16.36,
                   9.22, 1.94},
        Table3Case{StageId::kLayer3_2, 16, 140, 68, 12720, 6378, 100.00,
                   30.91, 23.91, 5.99}));

TEST(ResourceModel, Layer32SaturatesBram) {
  ResourceModel model;
  for (int n : {1, 4, 8, 16}) {
    auto r = model.report(StageId::kLayer3_2, n);
    EXPECT_TRUE(r.bram_saturated) << "conv_x" << n;
    EXPECT_EQ(r.usage.bram36, 140);
  }
  EXPECT_FALSE(model.report(StageId::kLayer1, 8).bram_saturated);
  EXPECT_FALSE(model.report(StageId::kLayer2_2, 16).bram_saturated);
}

TEST(ResourceModel, UnpublishedPointsUseEstimator) {
  ResourceModel model;
  auto r = model.report(StageId::kLayer1, 32, /*clock_mhz=*/50.0);
  EXPECT_FALSE(r.from_paper_table);
  EXPECT_EQ(r.usage.dsp, 132);  // 4*32 + 4
  EXPECT_TRUE(r.timing_met);    // at 50 MHz
  auto r100 = model.report(StageId::kLayer1, 32, /*clock_mhz=*/100.0);
  EXPECT_FALSE(r100.timing_met);  // paper: conv_x32 fails 100 MHz
}

TEST(ResourceModel, EstimatorWithinDocumentedBandOfPaper) {
  // The structural/fitted estimator must land within ±45% of every
  // published point for LUT/FF and DSP exactly; BRAM is structural and may
  // differ more for layer3_2 (the saturated case).
  ResourceModel model;
  for (StageId layer : {StageId::kLayer1, StageId::kLayer2_2,
                        StageId::kLayer3_2}) {
    for (int n : {1, 4, 8, 16}) {
      const auto paper = *ResourceModel::paper_point(layer, n);
      const auto g = ResourceModel::geometry_for(layer);
      const auto est = model.estimate(g, n);
      EXPECT_EQ(est.dsp, paper.dsp) << stage_name(layer) << " x" << n;
      EXPECT_NEAR(est.lut, paper.lut, paper.lut * 0.45)
          << stage_name(layer) << " x" << n;
      EXPECT_NEAR(est.ff, paper.ff, paper.ff * 0.45)
          << stage_name(layer) << " x" << n;
    }
  }
}

TEST(ResourceModel, GeometryForPaperLayers) {
  auto g1 = ResourceModel::geometry_for(StageId::kLayer1);
  EXPECT_EQ(g1.out_channels, 16);
  EXPECT_EQ(g1.extent, 32);
  auto g3 = ResourceModel::geometry_for(StageId::kLayer3_2);
  EXPECT_EQ(g3.out_channels, 64);
  EXPECT_EQ(g3.extent, 8);
  EXPECT_THROW(ResourceModel::geometry_for(StageId::kConv1), odenet::Error);
}

TEST(ResourceModel, SixteenBitWeightsShrinkBram) {
  // Footnote 2: reduced bit widths can fit more layers in PL.
  ResourceModel model;
  const auto g = ResourceModel::geometry_for(StageId::kLayer3_2);
  const auto wide = model.estimate(g, 16, 32);
  const auto narrow = model.estimate(g, 16, 16);
  EXPECT_LT(narrow.bram36, wide.bram36);
  EXPECT_THROW(model.estimate(g, 16, 12), odenet::Error);
}

TEST(ResourceModel, SixteenBitReportBypassesPaperTable) {
  ResourceModel model;
  auto r = model.report(StageId::kLayer3_2, 16, 100.0, /*weight_bits=*/16);
  EXPECT_FALSE(r.from_paper_table);
}
