// BatchNorm2d: statistics, modes, running estimates, gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "core/batchnorm.hpp"
#include "util/rng.hpp"

using odenet::core::BatchNorm2d;
using odenet::core::Tensor;
namespace ou = odenet::util;

namespace {
Tensor random_tensor(std::vector<int> shape, ou::Rng& rng, double mean = 0.0,
                     double std = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(mean, std));
  }
  return t;
}

void channel_stats(const Tensor& x, int c, double* mean, double* var) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  double sum = 0, sq = 0;
  for (int ni = 0; ni < n; ++ni)
    for (int hi = 0; hi < h; ++hi)
      for (int wi = 0; wi < w; ++wi) {
        const double v = x.at(ni, c, hi, wi);
        sum += v;
        sq += v * v;
      }
  const double count = static_cast<double>(n) * h * w;
  *mean = sum / count;
  *var = sq / count - (*mean) * (*mean);
}
}  // namespace

TEST(BatchNorm, NormalizesToZeroMeanUnitVar) {
  ou::Rng rng(1);
  BatchNorm2d bn(3);
  bn.set_training(true);
  Tensor x = random_tensor({4, 3, 5, 5}, rng, 2.5, 3.0);
  Tensor y = bn.forward(x);
  for (int c = 0; c < 3; ++c) {
    double m, v;
    channel_stats(y, c, &m, &v);
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GammaBetaAffineApplied) {
  ou::Rng rng(2);
  BatchNorm2d bn(2);
  bn.set_training(true);
  bn.gamma().value.at1(0) = 2.0f;
  bn.beta().value.at1(0) = -1.0f;
  Tensor x = random_tensor({2, 2, 4, 4}, rng);
  Tensor y = bn.forward(x);
  double m, v;
  channel_stats(y, 0, &m, &v);
  EXPECT_NEAR(m, -1.0, 1e-4);
  EXPECT_NEAR(v, 4.0, 5e-2);
  channel_stats(y, 1, &m, &v);
  EXPECT_NEAR(m, 0.0, 1e-4);
}

TEST(BatchNorm, RunningStatsConverge) {
  ou::Rng rng(3);
  BatchNorm2d bn(1);
  bn.set_training(true);
  // Feed many batches with mean 4, var 9.
  for (int i = 0; i < 200; ++i) {
    bn.forward(random_tensor({8, 1, 4, 4}, rng, 4.0, 3.0));
  }
  EXPECT_NEAR(bn.running_mean().at1(0), 4.0f, 0.2f);
  EXPECT_NEAR(bn.running_var().at1(0), 9.0f, 0.8f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.running_mean().at1(0) = 10.0f;
  bn.running_var().at1(0) = 4.0f;
  bn.set_training(false);
  Tensor x = Tensor::full({1, 1, 2, 2}, 12.0f);
  Tensor y = bn.forward(x);
  // (12 - 10)/2 = 1.
  EXPECT_NEAR(y.at(0, 0, 0, 0), 1.0f, 1e-3f);
}

TEST(BatchNorm, BatchStatsInEvalMode) {
  BatchNorm2d bn(1);
  bn.set_use_batch_stats_in_eval(true);
  bn.set_training(false);
  // Running stats deliberately absurd: must be ignored.
  bn.running_mean().at1(0) = 100.0f;
  ou::Rng rng(4);
  Tensor x = random_tensor({1, 1, 8, 8}, rng, 5.0, 2.0);
  Tensor y = bn.forward(x);
  double m, v;
  channel_stats(y, 0, &m, &v);
  EXPECT_NEAR(m, 0.0, 1e-4);
}

TEST(BatchNorm, FreezeRunningStats) {
  ou::Rng rng(5);
  BatchNorm2d bn(1);
  bn.set_training(true);
  bn.forward(random_tensor({2, 1, 4, 4}, rng, 1.0, 1.0));
  const float m1 = bn.running_mean().at1(0);
  bn.set_freeze_running_stats(true);
  bn.forward(random_tensor({2, 1, 4, 4}, rng, 50.0, 1.0));
  EXPECT_EQ(bn.running_mean().at1(0), m1);  // unchanged under freeze
  bn.set_freeze_running_stats(false);
  bn.forward(random_tensor({2, 1, 4, 4}, rng, 50.0, 1.0));
  EXPECT_NE(bn.running_mean().at1(0), m1);
}

TEST(BatchNorm, GradMatchesFiniteDifference) {
  ou::Rng rng(6);
  BatchNorm2d bn(2);
  bn.set_training(true);
  bn.gamma().value.at1(0) = 1.3f;
  bn.beta().value.at1(1) = 0.4f;
  Tensor x = random_tensor({2, 2, 3, 3}, rng);
  Tensor gout = random_tensor({2, 2, 3, 3}, rng);

  bn.forward(x);
  Tensor gin = bn.backward(gout);

  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{9}, std::size_t{20}}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = bn.forward(x).dot(gout);
    x.data()[i] = orig - eps;
    const float dn = bn.forward(x).dot(gout);
    x.data()[i] = orig;
    EXPECT_NEAR(gin.data()[i], (up - dn) / (2 * eps), 5e-2f) << "x index " << i;
  }
}

TEST(BatchNorm, GammaBetaGradMatchesFiniteDifference) {
  ou::Rng rng(7);
  BatchNorm2d bn(2);
  bn.set_training(true);
  Tensor x = random_tensor({1, 2, 4, 4}, rng);
  Tensor gout = random_tensor({1, 2, 4, 4}, rng);
  bn.forward(x);
  bn.backward(gout);
  const float ga = bn.gamma().grad.at1(0);
  const float ba = bn.beta().grad.at1(1);

  const float eps = 1e-3f;
  float orig = bn.gamma().value.at1(0);
  bn.gamma().value.at1(0) = orig + eps;
  const float up = bn.forward(x).dot(gout);
  bn.gamma().value.at1(0) = orig - eps;
  const float dn = bn.forward(x).dot(gout);
  bn.gamma().value.at1(0) = orig;
  EXPECT_NEAR(ga, (up - dn) / (2 * eps), 2e-2f);

  orig = bn.beta().value.at1(1);
  bn.beta().value.at1(1) = orig + eps;
  const float upb = bn.forward(x).dot(gout);
  bn.beta().value.at1(1) = orig - eps;
  const float dnb = bn.forward(x).dot(gout);
  bn.beta().value.at1(1) = orig;
  EXPECT_NEAR(ba, (upb - dnb) / (2 * eps), 2e-2f);
}

TEST(BatchNorm, BackwardGradSumsToZeroPerChannel) {
  // BN output is invariant to adding a constant to a channel, so the
  // input gradient must sum to ~0 per channel.
  ou::Rng rng(8);
  BatchNorm2d bn(2);
  bn.set_training(true);
  Tensor x = random_tensor({2, 2, 4, 4}, rng);
  bn.forward(x);
  Tensor gin = bn.backward(random_tensor({2, 2, 4, 4}, rng));
  for (int c = 0; c < 2; ++c) {
    double sum = 0;
    for (int n = 0; n < 2; ++n)
      for (int h = 0; h < 4; ++h)
        for (int w = 0; w < 4; ++w) sum += gin.at(n, c, h, w);
    EXPECT_NEAR(sum, 0.0, 1e-3);
  }
}

TEST(BatchNorm, RejectsWrongShape) {
  BatchNorm2d bn(4);
  EXPECT_THROW(bn.forward(Tensor({1, 3, 2, 2})), odenet::Error);
  EXPECT_THROW(bn.backward(Tensor({1, 4, 2, 2})), odenet::Error);
  EXPECT_THROW(BatchNorm2d(0), odenet::Error);
}

TEST(BatchNorm, ParamCountIsTwoPerChannel) {
  BatchNorm2d bn(16);
  EXPECT_EQ(bn.param_count(), 32u);  // the Table-2 accounting rule
}
