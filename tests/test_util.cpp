// Unit tests for src/util: rng, thread pool, tables, cli, serialization.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ou = odenet::util;

TEST(Check, ThrowsWithMessage) {
  try {
    ODENET_CHECK(1 == 2, "custom context " << 42);
    FAIL() << "expected throw";
  } catch (const odenet::Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  ou::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  ou::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  ou::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  ou::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), odenet::Error);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  ou::Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.15);
  }
  EXPECT_THROW(rng.uniform_int(0), odenet::Error);
}

TEST(Rng, NormalMomentsMatch) {
  ou::Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  ou::Rng rng(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
  EXPECT_THROW(rng.normal(0.0, -1.0), odenet::Error);
}

TEST(Rng, BernoulliFrequency) {
  ou::Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  ou::Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitProducesIndependentStream) {
  ou::Rng a(14);
  ou::Rng child = a.split();
  // Parent and child must not produce the same next values.
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(ThreadPool, ParallelForCoversRange) {
  ou::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ou::parallel_for(pool, 0, 1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ou::ThreadPool pool(2);
  int calls = 0;
  ou::parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ou::ThreadPool pool(3);
  EXPECT_THROW(ou::parallel_for(pool, 0, 100,
                                [&](std::size_t i) {
                                  if (i == 42) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // Pool must still be usable after an exception.
  std::atomic<int> count{0};
  ou::parallel_for(pool, 0, 10, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ou::ThreadPool pool(1);
  std::vector<int> order;
  ou::parallel_for(pool, 0, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, DeterministicViaPerElementWrites) {
  // The library's kernels write disjoint slices and reduce sequentially;
  // that pattern must be bit-deterministic regardless of scheduling.
  ou::ThreadPool pool(4);
  auto run = [&pool] {
    std::vector<double> values(1000);
    ou::parallel_for(pool, 0, 1000, [&](std::size_t i) {
      values[i] = 1.0 / static_cast<double>(i + 1);
    });
    double acc = 0;
    for (double v : values) acc += v;
    return acc;
  };
  EXPECT_EQ(run(), run());
}

TEST(Table, AlignedFormatting) {
  ou::TableWriter t({"a", "long_header"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvFormatting) {
  ou::TableWriter t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_string(ou::TableWriter::Style::kCsv), "x,y\n1,2\n3,4\n");
}

TEST(Table, RejectsBadArity) {
  ou::TableWriter t({"x", "y"});
  EXPECT_THROW(t.add_row({"only-one"}), odenet::Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(ou::TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(ou::TableWriter::fmt_int(-42), "-42");
  EXPECT_EQ(ou::TableWriter::fmt_percent(0.4, 2), "40.00%");
}

TEST(Cli, ParsesFlagsAndOptions) {
  ou::CliParser cli("prog", "test");
  cli.add_flag("verbose", "be chatty");
  cli.add_option("epochs", "10", "epoch count");
  cli.add_option("lr", "0.1", "learning rate");
  const char* argv[] = {"prog", "--verbose", "--epochs=20", "--lr", "0.5"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_EQ(cli.get_int("epochs"), 20);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.5);
}

TEST(Cli, DefaultsApply) {
  ou::CliParser cli("prog", "test");
  cli.add_option("n", "56", "depth");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 56);
}

TEST(Cli, RejectsUnknownAndMalformed) {
  ou::CliParser cli("prog", "test");
  cli.add_option("n", "1", "depth");
  const char* bad1[] = {"prog", "--unknown=3"};
  EXPECT_THROW(cli.parse(2, bad1), odenet::Error);
  ou::CliParser cli2("prog", "test");
  cli2.add_option("n", "1", "depth");
  const char* bad2[] = {"prog", "--n=abc"};
  ASSERT_TRUE(cli2.parse(2, bad2));
  EXPECT_THROW(cli2.get_int("n"), odenet::Error);
}

TEST(Cli, HelpShortCircuits) {
  ou::CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Serialize, RoundTripScalarsAndArrays) {
  std::stringstream ss;
  ou::BinaryWriter w(ss);
  w.write_u32(0xDEADBEEF);
  w.write_u64(1ULL << 40);
  w.write_f32(3.5f);
  w.write_string("hello");
  w.write_floats({1.0f, -2.0f, 0.25f});

  ou::BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(r.read_u64(), 1ULL << 40);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.5f);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_floats(), (std::vector<float>{1.0f, -2.0f, 0.25f}));
}

TEST(Serialize, TruncationThrows) {
  std::stringstream ss;
  ou::BinaryWriter w(ss);
  w.write_u64(100);  // promises 100 floats, delivers none
  ou::BinaryReader r(ss);
  EXPECT_THROW(r.read_floats(), odenet::Error);
}

TEST(Serialize, HeaderValidation) {
  std::stringstream good;
  ou::BinaryWriter w(good);
  ou::write_weights_header(w);
  ou::BinaryReader r(good);
  EXPECT_NO_THROW(ou::read_weights_header(r));

  std::stringstream bad;
  ou::BinaryWriter wb(bad);
  wb.write_u32(0x12345678);
  wb.write_u32(1);
  ou::BinaryReader rb(bad);
  EXPECT_THROW(ou::read_weights_header(rb), odenet::Error);
}
