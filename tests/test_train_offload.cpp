// Training-offload extension model (paper §5 future work).
#include <gtest/gtest.h>

#include "fpga/bn_engine.hpp"
#include "fpga/conv_engine.hpp"
#include "sched/train_offload.hpp"

using namespace odenet;
using namespace odenet::models;
using namespace odenet::sched;

TEST(TrainOffload, SoftwareTrainingIsTripleInference) {
  TrainingLatencyModel train_model;
  LatencyModel infer_model;
  NetworkSpec spec = make_spec(Arch::kROdeNet3, 56);
  const double infer =
      infer_model.evaluate(spec, Partition::none()).total_without_pl;
  EXPECT_NEAR(train_model.sw_image_seconds(spec), 3.0 * infer, 1e-9);
}

TEST(TrainOffload, HybridSpeedupNearInferenceSpeedup) {
  // Both sides scale by ~3x, so the training speedup should be within a
  // modest band of the inference speedup (extra transfers pull it down).
  TrainingLatencyModel train_model;
  LatencyModel infer_model;
  NetworkSpec spec = make_spec(Arch::kROdeNet3, 56);
  Partition part = Partition::single(StageId::kLayer3_2, 16);
  const double infer_speedup =
      infer_model.evaluate(spec, part).overall_speedup;
  TrainingRow row = train_model.evaluate(spec, part);
  EXPECT_GT(row.speedup, 0.75 * infer_speedup);
  EXPECT_LT(row.speedup, 1.15 * infer_speedup);
}

TEST(TrainOffload, NoPartitionIsIdentity) {
  TrainingLatencyModel model;
  TrainingRow row = model.evaluate(make_spec(Arch::kROdeNet2, 32),
                                   Partition::none());
  EXPECT_EQ(row.offload_target, "-");
  EXPECT_EQ(row.image_seconds_hybrid, row.image_seconds_sw);
  EXPECT_EQ(row.speedup, 1.0);
}

TEST(TrainOffload, SpeedupGrowsWithN) {
  TrainingLatencyModel model;
  double prev = 0.0;
  for (int n : {20, 32, 44, 56}) {
    TrainingRow row = model.evaluate(make_spec(Arch::kROdeNet3, n),
                                     Partition::single(StageId::kLayer3_2,
                                                       16));
    EXPECT_GT(row.speedup, prev) << "N=" << n;
    prev = row.speedup;
  }
  EXPECT_GT(prev, 2.0);  // large-N training offload is clearly worthwhile
}

TEST(TrainOffload, Layer32TrainingNeedsNarrowWeights) {
  // Stored activations double the fmap BRAM: 32-bit layer3_2 training
  // exceeds the device, 16-bit fits (the paper's footnote-2 direction).
  TrainingLatencyModel model;
  NetworkSpec spec = make_spec(Arch::kROdeNet3, 56);
  Partition part = Partition::single(StageId::kLayer3_2, 16);
  EXPECT_FALSE(model.evaluate(spec, part, 32, 32).fits_device);
  EXPECT_TRUE(model.evaluate(spec, part, 32, 16).fits_device);
}

TEST(TrainOffload, LargerBatchAmortizesWeightReadback) {
  TrainingLatencyModel model;
  NetworkSpec spec = make_spec(Arch::kROdeNet3, 56);
  Partition part = Partition::single(StageId::kLayer3_2, 16);
  const double b1 = model.evaluate(spec, part, 1).image_seconds_hybrid;
  const double b128 = model.evaluate(spec, part, 128).image_seconds_hybrid;
  EXPECT_LT(b128, b1);
  EXPECT_THROW(model.evaluate(spec, part, 0), odenet::Error);
}

TEST(TrainOffload, PlCycleModelComposition) {
  // 3x conv pair + 2x BN pair.
  NetworkSpec spec = make_spec(Arch::kROdeNet3, 56);
  const auto& s = spec.stage(StageId::kLayer3_2);
  const std::uint64_t got =
      TrainingLatencyModel::pl_train_block_cycles(s, 16);
  const std::uint64_t conv =
      fpga::ConvEngine::conv_cycles(64, 64, 8, 16);
  const std::uint64_t bn = fpga::BnEngine::bn_cycles(64, 8);
  EXPECT_EQ(got, 6 * conv + 4 * bn);
}
