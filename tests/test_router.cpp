// Unit tests for the load-aware backend Router: each policy against a fake
// backend-load snapshot (no engine, no threads).
#include <gtest/gtest.h>

#include <vector>

#include "runtime/router.hpp"
#include "util/check.hpp"

using namespace odenet;
using runtime::BackendLoad;
using runtime::RoutePolicy;
using runtime::Router;

namespace {

BackendLoad load(std::size_t depth, int in_flight = 0,
                 double modeled_seconds = 1e-3) {
  BackendLoad l;
  l.queue_depth = depth;
  l.in_flight = in_flight;
  l.modeled_request_seconds = modeled_seconds;
  return l;
}

}  // namespace

TEST(Router, StaticAlwaysReturnsConfiguredIndex) {
  Router router(RoutePolicy::kStatic, 1);
  const std::vector<BackendLoad> loads = {load(0), load(9), load(2)};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(router.route(loads), 1u);
}

TEST(Router, StaticIndexOutOfRangeThrows) {
  Router router(RoutePolicy::kStatic, 3);
  const std::vector<BackendLoad> loads = {load(0), load(0)};
  EXPECT_THROW(router.route(loads), odenet::Error);
}

TEST(Router, EmptySnapshotThrows) {
  Router router(RoutePolicy::kLeastDepth);
  EXPECT_THROW(router.route({}), odenet::Error);
}

TEST(Router, RoundRobinIsFair) {
  Router router(RoutePolicy::kRoundRobin);
  // Loads are skewed, but round-robin ignores them and cycles.
  const std::vector<BackendLoad> loads = {load(50), load(0), load(3)};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 9; ++i) {
    const std::size_t picked = router.route(loads);
    EXPECT_EQ(picked, static_cast<std::size_t>(i % 3));
    hits[picked] += 1;
  }
  EXPECT_EQ(hits, (std::vector<int>{3, 3, 3}));
}

TEST(Router, LeastDepthPicksShallowestQueue) {
  Router router(RoutePolicy::kLeastDepth);
  EXPECT_EQ(router.route({load(5), load(3), load(1)}), 2u);
  EXPECT_EQ(router.route({load(0), load(3), load(1)}), 0u);
}

TEST(Router, LeastDepthCountsInFlightWork) {
  Router router(RoutePolicy::kLeastDepth);
  // Backend 0 has an empty queue but 6 requests being served; backend 1
  // has 2 queued and nothing running — 2 outstanding beats 6.
  EXPECT_EQ(router.route({load(0, /*in_flight=*/6), load(2, 0)}), 1u);
}

TEST(Router, LeastDepthTieBreaksToLowestIndexDeterministically) {
  Router router(RoutePolicy::kLeastDepth);
  const std::vector<BackendLoad> loads = {load(2, 1), load(1, 2), load(3, 0)};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(router.route(loads), 0u);
}

TEST(Router, ModeledLatencyPrefersFasterBackendWhenIdle) {
  Router router(RoutePolicy::kModeledLatency);
  // An idle PS software backend at 10 ms/request versus an idle PL-offload
  // backend at 2 ms/request: small batches go to the faster engine.
  const std::vector<BackendLoad> loads = {load(0, 0, 10e-3),
                                          load(0, 0, 2e-3)};
  EXPECT_EQ(router.route(loads), 1u);
}

TEST(Router, ModeledLatencySpillsToSlowBackendUnderQueuePressure) {
  Router router(RoutePolicy::kModeledLatency);
  // Fast backend with 9 outstanding: (9+1)*2 ms = 20 ms estimated; the
  // idle slow backend finishes in 10 ms — spill.
  EXPECT_EQ(router.route({load(0, 0, 10e-3), load(9, 0, 2e-3)}), 0u);
  // At 3 outstanding the fast backend still wins: (3+1)*2 ms = 8 ms.
  EXPECT_EQ(router.route({load(0, 0, 10e-3), load(3, 0, 2e-3)}), 1u);
}

TEST(Router, ModeledLatencyTieBreaksToLowestIndexDeterministically) {
  Router router(RoutePolicy::kModeledLatency);
  const std::vector<BackendLoad> loads = {load(1, 0, 4e-3), load(1, 0, 4e-3)};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(router.route(loads), 0u);
}

TEST(Router, ModeledLatencyWithEqualModelsDegeneratesToLeastDepth) {
  Router router(RoutePolicy::kModeledLatency);
  EXPECT_EQ(router.route({load(4, 0, 3e-3), load(1, 1, 3e-3)}), 1u);
}

TEST(Router, PolicyNamesRoundTrip) {
  for (RoutePolicy policy : runtime::all_route_policies()) {
    EXPECT_EQ(runtime::route_policy_from_name(route_policy_name(policy)),
              policy);
  }
  EXPECT_THROW(runtime::route_policy_from_name("speculative"),
               odenet::Error);
}

// ---- measured-latency policy ------------------------------------------

namespace {

BackendLoad measured_load(std::size_t depth, double modeled_seconds,
                          double measured_seconds) {
  BackendLoad l;
  l.queue_depth = depth;
  l.modeled_request_seconds = modeled_seconds;
  l.measured_request_seconds = measured_seconds;
  return l;
}

}  // namespace

TEST(Router, MeasuredLatencyFallsBackToModelWhileCold) {
  Router router(RoutePolicy::kMeasuredLatency);
  // No measurements yet (EWMA cold reports 0): the analytical model must
  // drive placement — backend 1 is modeled faster.
  const std::vector<BackendLoad> loads = {measured_load(0, 10e-3, 0.0),
                                          measured_load(0, 2e-3, 0.0)};
  EXPECT_EQ(router.route(loads), 1u);
}

TEST(Router, MeasuredLatencyTrustsMeasurementOverModelWhenWarm) {
  Router router(RoutePolicy::kMeasuredLatency, 0, /*hysteresis=*/0.0);
  // The model thinks backend 0 is fast, but the measured service time
  // says it is actually 4x slower than backend 1 (host contention the
  // model cannot see). The measurement must win.
  const std::vector<BackendLoad> loads = {measured_load(0, 2e-3, 8e-3),
                                          measured_load(0, 10e-3, 2e-3)};
  EXPECT_EQ(router.route(loads), 1u);
}

TEST(Router, MeasuredLatencyMixesWarmAndColdBackends) {
  Router router(RoutePolicy::kMeasuredLatency, 0, /*hysteresis=*/0.0);
  // Backend 0 is warm at 6 ms; backend 1 is cold but modeled at 2 ms —
  // the cold backend still attracts traffic through its model estimate.
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 6e-3),
                          measured_load(0, 2e-3, 0.0)}),
            1u);
}

TEST(Router, MeasuredLatencyHysteresisStopsFlapping) {
  Router router(RoutePolicy::kMeasuredLatency, 0, /*hysteresis=*/0.15);
  // First route anchors on backend 0 (clearly best).
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 2e-3),
                          measured_load(0, 1e-3, 4e-3)}),
            0u);
  // Jitter makes backend 1 marginally better (within the 15% band): the
  // anchor holds, placement does not flap.
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 2.0e-3),
                          measured_load(0, 1e-3, 1.9e-3)}),
            0u);
  // A decisive gap (anchor cost > best x 1.15) must still switch.
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 4e-3),
                          measured_load(0, 1e-3, 2e-3)}),
            1u);
  // And the anchor moves with the switch.
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 2.1e-3),
                          measured_load(0, 1e-3, 2.0e-3)}),
            1u);
}

TEST(Router, MeasuredLatencyZeroHysteresisTakesEveryArgmin) {
  Router router(RoutePolicy::kMeasuredLatency, 0, /*hysteresis=*/0.0);
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 2.0e-3),
                          measured_load(0, 1e-3, 1.9e-3)}),
            1u);
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 1.8e-3),
                          measured_load(0, 1e-3, 1.9e-3)}),
            0u);
}

TEST(Router, MeasuredLatencyCountsQueuePressure) {
  Router router(RoutePolicy::kMeasuredLatency, 0, /*hysteresis=*/0.0);
  // Equal measured service times: queue pressure decides, like
  // least-depth.
  EXPECT_EQ(router.route({measured_load(4, 1e-3, 3e-3),
                          measured_load(1, 1e-3, 3e-3)}),
            1u);
}

TEST(Router, NegativeHysteresisThrows) {
  EXPECT_THROW(Router(RoutePolicy::kMeasuredLatency, 0, -0.1),
               odenet::Error);
}

// Regression for the reload() bug: InferenceEngine::reload() resets every
// backend's ServiceTimeEwma but used to leave the hysteresis anchor in
// place, so the pre-publish pick kept attracting traffic through the
// anti-flap band even though the measurements that justified it were just
// discarded. reset_anchor() must make the next route a fresh argmin.
TEST(Router, ResetAnchorClearsHysteresisStickiness) {
  Router router(RoutePolicy::kMeasuredLatency, 0, /*hysteresis=*/0.15);
  // Anchor on backend 0.
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 2.0e-3),
                          measured_load(0, 1e-3, 4.0e-3)}),
            0u);
  // Backend 1 is now marginally better — within the band, the anchor
  // holds (this is the stickiness reset_anchor must clear).
  const std::vector<BackendLoad> post_swap = {measured_load(0, 1e-3, 2.0e-3),
                                              measured_load(0, 1e-3, 1.9e-3)};
  EXPECT_EQ(router.route(post_swap), 0u);
  // After a weight swap the engine resets the EWMAs and the anchor: the
  // SAME snapshot must now route to the plain argmin, backend 1.
  router.reset_anchor();
  EXPECT_EQ(router.route(post_swap), 1u);
}

// ---- cost_order (the cluster spill order) ------------------------------

TEST(Router, CostOrderRanksByEstimatedCompletionCheapestFirst) {
  Router router(RoutePolicy::kMeasuredLatency, 0, /*hysteresis=*/0.0);
  // Costs: b0 (2+1)*4ms = 12ms, b1 (0+1)*2ms = 2ms, b2 (5+1)*1ms = 6ms.
  const std::vector<BackendLoad> loads = {measured_load(2, 1e-3, 4e-3),
                                          measured_load(0, 1e-3, 2e-3),
                                          measured_load(5, 1e-3, 1e-3)};
  EXPECT_EQ(router.cost_order(loads),
            (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Router, CostOrderTieBreaksToLowestIndexAndIgnoresAnchor) {
  Router router(RoutePolicy::kMeasuredLatency, 0, /*hysteresis=*/0.15);
  // Anchor the route() state on backend 2 (clearly best)...
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 9e-3),
                          measured_load(0, 1e-3, 9e-3),
                          measured_load(0, 1e-3, 1e-3)}),
            2u);
  // ...then ask for a spill order over an all-equal snapshot: pure
  // snapshot function, ties to the lowest index, no anchor bias.
  const std::vector<BackendLoad> equal = {measured_load(1, 1e-3, 3e-3),
                                          measured_load(1, 1e-3, 3e-3),
                                          measured_load(1, 1e-3, 3e-3)};
  EXPECT_EQ(router.cost_order(equal),
            (std::vector<std::size_t>{0, 1, 2}));
  // And consulting it did not move the anchor.
  EXPECT_EQ(router.route({measured_load(0, 1e-3, 3.0e-3),
                          measured_load(0, 1e-3, 3.0e-3),
                          measured_load(0, 1e-3, 2.9e-3)}),
            2u);
}

TEST(Router, CostOrderFallsBackToModelWhileCold) {
  Router router(RoutePolicy::kMeasuredLatency);
  // All cold: the analytical model must drive the order.
  const std::vector<BackendLoad> loads = {measured_load(0, 10e-3, 0.0),
                                          measured_load(0, 2e-3, 0.0),
                                          measured_load(0, 5e-3, 0.0)};
  EXPECT_EQ(router.cost_order(loads),
            (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_THROW(router.cost_order({}), odenet::Error);
}
