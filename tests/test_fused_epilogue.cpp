// Fused inference epilogues (core/gemm_kernels.hpp tile4x16_ep + the
// elementwise kernel family, core/im2col.hpp gemm_tiled_pa_ep,
// Conv2d::forward_fused, BuildingBlock's fused branch/Euler paths and the
// allocation-free fixed-step solver loop):
//  * the epilogue GEMM against the unfused GEMM + a scalar reference
//    epilogue chain — BITWISE per ISA, across full-tile and ragged
//    geometries x epilogue combinations, including residual aliasing C;
//  * the standalone elementwise kernels against references and BITWISE
//    scalar-vs-AVX2 (including -0.0 and NaN for relu);
//  * thread-count invariance of the epilogue GEMM (bitwise at 1/2/8);
//  * Conv2d::forward_fused == forward + affine + relu (+ accumulate),
//    both the n==1 direct-GEMM path and the n>1 permute path;
//  * BuildingBlock fused branch/forward/Euler vs the unfused chain;
//  * training mode is untouched (fused path gated off, outputs bitwise);
//  * the restructured fixed-step solver == the exported step functions,
//    with and without caller scratch;
//  * no arena growth after warmup for the fused OdeBlock forward;
//  * shortcut/shortcut_backward vs the per-element reference walk.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/block.hpp"
#include "core/conv2d.hpp"
#include "core/gemm_kernels.hpp"
#include "core/im2col.hpp"
#include "core/init.hpp"
#include "models/odeblock.hpp"
#include "solver/ode.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace odenet::core;
namespace om = odenet::models;
namespace os = odenet::solver;
namespace ou = odenet::util;

namespace {

std::vector<float> random_vec(std::size_t n, ou::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

Tensor random_tensor(std::vector<int> shape, ou::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}

/// Gives a BN non-trivial eval statistics so the folded affine is not a
/// near-identity (running stats default to mean 0 / var 1 after init).
void randomize_bn(BatchNorm2d& bn, ou::Rng& rng) {
  const std::size_t c = bn.running_mean().numel();
  for (std::size_t i = 0; i < c; ++i) {
    bn.gamma().value.data()[i] = static_cast<float>(rng.uniform(0.5, 1.5));
    bn.beta().value.data()[i] = static_cast<float>(rng.normal(0.0, 0.3));
    bn.running_mean().data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
    bn.running_var().data()[i] = static_cast<float>(rng.uniform(0.5, 2.0));
  }
}

/// The reference epilogue chain, in exactly the kernel's op order:
/// t = c; t *= scale[row]; t += shift[row]; relu; t += beta * r.
void apply_epilogue_ref(std::vector<float>& c, int m, int n,
                        const float* scale, const float* shift, bool relu,
                        const float* residual, float beta) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float t = c[static_cast<std::size_t>(i) * n + j];
      if (scale != nullptr) t = t * scale[i];
      if (shift != nullptr) t = t + shift[i];
      if (relu) t = t > 0.0f ? t : 0.0f;
      if (residual != nullptr) {
        t = t + beta * residual[static_cast<std::size_t>(i) * n + j];
      }
      c[static_cast<std::size_t>(i) * n + j] = t;
    }
  }
}

double max_abs_diff(const float* a, const float* b, std::size_t n) {
  double diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(a[i]) - b[i]));
  }
  return diff;
}

struct Shape {
  int m, k, n;
  std::string str() const {
    return "m=" + std::to_string(m) + " k=" + std::to_string(k) +
           " n=" + std::to_string(n);
  }
};

/// Full tiles, ragged rows (m % 4), ragged cols (n % 16), panel edges.
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 7},     {4, 8, 16},    {5, 16, 17},  {8, 9, 32},
    {12, 64, 48}, {13, 7, 37},   {17, 27, 100}, {16, 32, 256}, {7, 33, 257},
    {20, 36, 255}, {64, 36, 130},
};

struct EpCombo {
  bool affine, relu, residual;
  const char* str;
};
const EpCombo kCombos[] = {
    {true, false, false, "affine"},
    {false, true, false, "relu"},
    {true, true, false, "affine+relu"},
    {false, false, true, "residual"},
    {true, true, true, "affine+relu+residual"},
};

/// RAII scalar-forcing so a failing EXPECT cannot leak the override.
struct ForceScalar {
  explicit ForceScalar(bool on) { gemm_force_scalar(on); }
  ~ForceScalar() { gemm_force_scalar(false); }
};

/// RAII kernel-pool + parallel-threshold override.
struct PoolOverride {
  explicit PoolOverride(ou::ThreadPool* pool, std::size_t min_flops) {
    set_kernel_pool(pool);
    gemm_set_parallel_min_flops(min_flops);
  }
  ~PoolOverride() {
    set_kernel_pool(nullptr);
    gemm_set_parallel_min_flops(0);
  }
};

/// RAII fused-epilogue toggle (restores the enabled default).
struct FusedOverride {
  explicit FusedOverride(bool on) { set_fused_epilogues(on); }
  ~FusedOverride() { set_fused_epilogues(true); }
};

void run_ep_vs_composition(const Shape& s, ou::Rng& rng) {
  const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
  const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
  const auto scale = random_vec(static_cast<std::size_t>(s.m), rng);
  const auto shift = random_vec(static_cast<std::size_t>(s.m), rng);
  const auto resid = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
  const float beta = 0.37f;
  const std::size_t cn = static_cast<std::size_t>(s.m) * s.n;

  PackedGemmA pa;
  pack_gemm_a(a.data(), s.m, s.k, pa);
  std::vector<float> plain(cn);
  gemm_tiled_pa(pa, b.data(), plain.data(), s.n, false);

  for (const EpCombo& combo : kCombos) {
    SCOPED_TRACE(s.str() + " ep=" + combo.str);
    GemmEpilogue ep;
    if (combo.affine) {
      ep.scale = scale.data();
      ep.shift = shift.data();
    }
    ep.relu = combo.relu;
    if (combo.residual) {
      ep.residual = resid.data();
      ep.beta = beta;
    }
    std::vector<float> got(cn, -7.0f);
    gemm_tiled_pa_ep(pa, b.data(), got.data(), s.n, ep);

    // The unfused composition: the plain GEMM plus a scalar epilogue
    // chain. All epilogue ops are single-rounded IEEE mul/add/max, so the
    // fused result must be BITWISE equal, whichever ISA is active.
    std::vector<float> want = plain;
    apply_epilogue_ref(want, s.m, s.n, ep.scale, ep.shift, ep.relu,
                       ep.residual, ep.beta);
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(), cn * sizeof(float)));
  }
}

}  // namespace

TEST(FusedEpilogue, DispatchTableHasNewKernels) {
  const GemmKernels& k = active_gemm_kernels();
  ASSERT_NE(k.tile4x16_ep, nullptr);
  ASSERT_NE(k.relu_f32, nullptr);
  ASSERT_NE(k.axpy_f32, nullptr);
  ASSERT_NE(k.mul_f32, nullptr);
  ASSERT_NE(k.scale_f32, nullptr);
  ASSERT_NE(k.affine_f32, nullptr);
}

TEST(FusedEpilogue, GemmEpMatchesUnfusedCompositionBitwise) {
  ou::Rng rng(21);
  for (const Shape& s : kShapes) run_ep_vs_composition(s, rng);
}

TEST(FusedEpilogue, GemmEpScalarMatchesUnfusedCompositionBitwise) {
  ForceScalar forced(true);
  ou::Rng rng(22);
  for (const Shape& s : kShapes) run_ep_vs_composition(s, rng);
}

TEST(FusedEpilogue, GemmEpIsaParityWithinTolerance) {
  if (!gemm_avx2_usable()) {
    GTEST_SKIP() << "AVX2+FMA kernels not usable on this host";
  }
  ou::Rng rng(23);
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(s.str());
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    const auto scale = random_vec(static_cast<std::size_t>(s.m), rng);
    const auto shift = random_vec(static_cast<std::size_t>(s.m), rng);
    const std::size_t cn = static_cast<std::size_t>(s.m) * s.n;
    GemmEpilogue ep;
    ep.scale = scale.data();
    ep.shift = shift.data();
    ep.relu = true;

    PackedGemmA pa;
    pack_gemm_a(a.data(), s.m, s.k, pa);
    std::vector<float> vec(cn), sca(cn);
    gemm_tiled_pa_ep(pa, b.data(), vec.data(), s.n, ep);
    {
      ForceScalar forced(true);
      gemm_tiled_pa_ep(pa, b.data(), sca.data(), s.n, ep);
    }
    // The k loop uses FMA on AVX2, so parity is tolerance-based (the
    // epilogue itself is contraction-free and adds no extra drift).
    const double tol = 1e-5 * std::sqrt(static_cast<double>(s.k)) + 1e-6;
    EXPECT_LE(max_abs_diff(vec.data(), sca.data(), cn), tol);
  }
}

TEST(FusedEpilogue, GemmEpResidualMayAliasC) {
  // The in-place Euler update z += h * f(z): the residual pointer IS the
  // output buffer. Every tile reads its own residual window before its
  // stores, so the aliased run must match the copy-based run bitwise.
  ou::Rng rng(24);
  for (const Shape& s : {Shape{8, 9, 32}, Shape{13, 7, 37}, Shape{5, 16, 17}}) {
    SCOPED_TRACE(s.str());
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    const auto scale = random_vec(static_cast<std::size_t>(s.m), rng);
    const auto shift = random_vec(static_cast<std::size_t>(s.m), rng);
    const auto state = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    const std::size_t cn = state.size();

    PackedGemmA pa;
    pack_gemm_a(a.data(), s.m, s.k, pa);
    GemmEpilogue ep;
    ep.scale = scale.data();
    ep.shift = shift.data();
    ep.beta = 0.125f;

    std::vector<float> separate(cn);
    ep.residual = state.data();
    gemm_tiled_pa_ep(pa, b.data(), separate.data(), s.n, ep);

    std::vector<float> inplace = state;
    ep.residual = inplace.data();
    gemm_tiled_pa_ep(pa, b.data(), inplace.data(), s.n, ep);
    EXPECT_EQ(0,
              std::memcmp(inplace.data(), separate.data(), cn * sizeof(float)));
  }
}

TEST(FusedEpilogue, ImplicitLoweringMatchesExplicitBitwise) {
  // The implicit B gather must pack exactly the values im2col
  // materializes — same micro-kernel, same sweep order, so the output is
  // bitwise equal to the explicit composition on either ISA.
  struct Geo {
    int c, h, w, m, kernel, pad;
  };
  const Geo geos[] = {{3, 4, 4, 4, 3, 1},   {5, 8, 8, 8, 3, 1},
                      {2, 2, 8, 12, 3, 1},  {4, 16, 16, 8, 3, 1},
                      {7, 8, 2, 4, 3, 1},   {3, 8, 8, 4, 5, 2}};
  const int batch = 3;
  ou::Rng rng(31);
  for (const Geo& geo : geos) {
    SCOPED_TRACE(testing::Message() << "c=" << geo.c << " h=" << geo.h
                                    << " w=" << geo.w << " m=" << geo.m
                                    << " k=" << geo.kernel);
    const LoweringGeometry g{.channels = geo.c, .height = geo.h,
                             .width = geo.w, .kernel = geo.kernel,
                             .stride = 1, .pad = geo.pad};
    ASSERT_TRUE(gemm_implicit_lowering_ok(g, geo.m));
    const std::size_t kk = g.col_rows();
    const std::size_t n = g.col_cols() * batch;
    const auto src = random_vec(
        static_cast<std::size_t>(batch) * geo.c * geo.h * geo.w, rng);
    const auto wvec = random_vec(static_cast<std::size_t>(geo.m) * kk, rng);
    const auto scale = random_vec(static_cast<std::size_t>(geo.m), rng);
    const auto shift = random_vec(static_cast<std::size_t>(geo.m), rng);
    PackedGemmA pa;
    pack_gemm_a(wvec.data(), geo.m, static_cast<int>(kk), pa);
    GemmEpilogue ep;
    ep.scale = scale.data();
    ep.shift = shift.data();
    ep.relu = true;
    std::vector<float> cols(kk * n);
    im2col_batched(src.data(), g, batch, cols.data());
    const std::size_t cn = static_cast<std::size_t>(geo.m) * n;
    auto check = [&] {
      std::vector<float> explicit_c(cn, -1.0f), implicit_c(cn, -2.0f);
      gemm_tiled_pa_ep(pa, cols.data(), explicit_c.data(),
                       static_cast<int>(n), ep);
      gemm_tiled_pa_ep_lowered(pa, src.data(), g, batch, implicit_c.data(),
                               ep);
      ASSERT_EQ(0, std::memcmp(explicit_c.data(), implicit_c.data(),
                               cn * sizeof(float)));
    };
    check();
    {
      ForceScalar forced(true);
      check();
    }
  }
  // Geometries the implicit path must refuse (caller falls back to the
  // materialized lowering).
  EXPECT_FALSE(gemm_implicit_lowering_ok(
      {.channels = 3, .height = 6, .width = 6}, 4));  // plane % 16 != 0
  EXPECT_FALSE(gemm_implicit_lowering_ok(
      {.channels = 3, .height = 8, .width = 8}, 6));  // m % 4 != 0
  EXPECT_FALSE(gemm_implicit_lowering_ok(
      {.channels = 3, .height = 8, .width = 8, .kernel = 3, .stride = 2}, 4));
  EXPECT_FALSE(gemm_implicit_lowering_ok(
      {.channels = 3, .height = 8, .width = 8, .kernel = 3, .stride = 1,
       .pad = 0},
      4));  // "valid" conv: out extents shrink
}

TEST(FusedEpilogue, GemmEpThreadCountInvarianceIsBitwise) {
  ou::Rng rng(25);
  for (const Shape& s : kShapes) {
    SCOPED_TRACE(s.str());
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    const auto scale = random_vec(static_cast<std::size_t>(s.m), rng);
    const auto shift = random_vec(static_cast<std::size_t>(s.m), rng);
    const auto resid = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    const std::size_t cn = resid.size();
    GemmEpilogue ep;
    ep.scale = scale.data();
    ep.shift = shift.data();
    ep.relu = true;
    ep.residual = resid.data();
    ep.beta = 0.5f;

    std::vector<float> base(cn);
    {
      ou::ThreadPool one(1);
      PoolOverride ov(&one, 1);
      PackedGemmA pa;
      pack_gemm_a(a.data(), s.m, s.k, pa);
      gemm_tiled_pa_ep(pa, b.data(), base.data(), s.n, ep);
    }
    for (std::size_t workers : {2u, 8u}) {
      ou::ThreadPool pool(workers);
      PoolOverride ov(&pool, 1);
      PackedGemmA pa;
      pack_gemm_a(a.data(), s.m, s.k, pa);
      std::vector<float> got(cn, -3.0f);
      gemm_tiled_pa_ep(pa, b.data(), got.data(), s.n, ep);
      EXPECT_EQ(0, std::memcmp(got.data(), base.data(), cn * sizeof(float)))
          << "differs at " << workers << " workers";
    }
  }
}

TEST(FusedEpilogue, ElementwiseKernelsMatchReference) {
  ou::Rng rng(26);
  const GemmKernels& k = active_gemm_kernels();
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{64}, std::size_t{1037}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const auto x = random_vec(n, rng);
    const auto y0 = random_vec(n, rng);

    std::vector<float> got(n);
    k.relu_f32(x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], x[i] > 0.0f ? x[i] : 0.0f);
    }
    // In-place form (src == dst is allowed).
    std::vector<float> inpl = x;
    k.relu_f32(inpl.data(), inpl.data(), n);
    EXPECT_EQ(0, std::memcmp(inpl.data(), got.data(), n * sizeof(float)));

    std::vector<float> y = y0;
    k.axpy_f32(0.75f, x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y[i], y0[i] + 0.75f * x[i]);
    }

    k.mul_f32(x.data(), y0.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], x[i] * y0[i]);
    inpl = x;  // dst aliasing the first operand (Tensor::mul's form)
    k.mul_f32(inpl.data(), y0.data(), inpl.data(), n);
    EXPECT_EQ(0, std::memcmp(inpl.data(), got.data(), n * sizeof(float)));

    inpl = x;
    k.scale_f32(inpl.data(), n, -1.5f);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(inpl[i], x[i] * -1.5f);

    k.affine_f32(x.data(), got.data(), n, 1.25f, -0.5f);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], x[i] * 1.25f + -0.5f);
    }
    inpl = x;
    k.affine_f32(inpl.data(), inpl.data(), n, 1.25f, -0.5f);
    EXPECT_EQ(0, std::memcmp(inpl.data(), got.data(), n * sizeof(float)));
  }
}

TEST(FusedEpilogue, ReluKernelSpecialValues) {
  // NaN clamps to 0 and -0.0 comes out as +0.0 — the scalar rule
  // `t > 0 ? t : 0` — in both ISA variants.
  const GemmKernels& k = active_gemm_kernels();
  std::vector<float> x = {std::numeric_limits<float>::quiet_NaN(), -0.0f,
                          0.0f,  -1.0f, 2.0f,
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity(), 3.0f,
                          -4.0f};
  std::vector<float> got(x.size());
  k.relu_f32(x.data(), got.data(), x.size());
  EXPECT_EQ(got[0], 0.0f);
  EXPECT_EQ(std::signbit(got[1]), false);  // -0.0 -> +0.0
  EXPECT_EQ(got[2], 0.0f);
  EXPECT_EQ(got[3], 0.0f);
  EXPECT_EQ(got[4], 2.0f);
  EXPECT_EQ(got[5], std::numeric_limits<float>::infinity());
  EXPECT_EQ(got[6], 0.0f);

  ForceScalar forced(true);
  std::vector<float> sca(x.size());
  active_gemm_kernels().relu_f32(x.data(), sca.data(), x.size());
  EXPECT_EQ(0, std::memcmp(sca.data(), got.data(), x.size() * sizeof(float)));
}

TEST(FusedEpilogue, ElementwiseIsaParityIsBitwise) {
  if (!gemm_avx2_usable()) {
    GTEST_SKIP() << "AVX2+FMA kernels not usable on this host";
  }
  ou::Rng rng(27);
  for (std::size_t n : {std::size_t{1}, std::size_t{8}, std::size_t{9},
                        std::size_t{31}, std::size_t{1000}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const auto x = random_vec(n, rng);
    const auto y0 = random_vec(n, rng);
    std::vector<float> vec(n), sca(n);

    active_gemm_kernels().relu_f32(x.data(), vec.data(), n);
    {
      ForceScalar forced(true);
      active_gemm_kernels().relu_f32(x.data(), sca.data(), n);
    }
    EXPECT_EQ(0, std::memcmp(vec.data(), sca.data(), n * sizeof(float)));

    vec = y0;
    active_gemm_kernels().axpy_f32(-0.3f, x.data(), vec.data(), n);
    sca = y0;
    {
      ForceScalar forced(true);
      active_gemm_kernels().axpy_f32(-0.3f, x.data(), sca.data(), n);
    }
    EXPECT_EQ(0, std::memcmp(vec.data(), sca.data(), n * sizeof(float)));

    active_gemm_kernels().mul_f32(x.data(), y0.data(), vec.data(), n);
    {
      ForceScalar forced(true);
      active_gemm_kernels().mul_f32(x.data(), y0.data(), sca.data(), n);
    }
    EXPECT_EQ(0, std::memcmp(vec.data(), sca.data(), n * sizeof(float)));

    vec = x;
    active_gemm_kernels().scale_f32(vec.data(), n, 0.7f);
    sca = x;
    {
      ForceScalar forced(true);
      active_gemm_kernels().scale_f32(sca.data(), n, 0.7f);
    }
    EXPECT_EQ(0, std::memcmp(vec.data(), sca.data(), n * sizeof(float)));

    active_gemm_kernels().affine_f32(x.data(), vec.data(), n, 1.1f, 0.2f);
    {
      ForceScalar forced(true);
      active_gemm_kernels().affine_f32(x.data(), sca.data(), n, 1.1f, 0.2f);
    }
    EXPECT_EQ(0, std::memcmp(vec.data(), sca.data(), n * sizeof(float)));
  }
}

TEST(FusedEpilogue, ConvForwardFusedMatchesUnfusedChain) {
  ou::Rng rng(28);
  struct Geo {
    int n, ci, co, hw;
    bool time_channel;
  };
  // Both GEMM->output paths: n == 1 writes NCHW directly, n > 1 goes
  // through the channel-major permute.
  const Geo geos[] = {
      {1, 3, 5, 6, false}, {1, 4, 4, 7, true},  {3, 3, 5, 6, false},
      {2, 4, 4, 5, true},  {4, 8, 8, 8, true},  {2, 2, 7, 9, false},
  };
  for (const Geo& g : geos) {
    SCOPED_TRACE("n=" + std::to_string(g.n) + " ci=" + std::to_string(g.ci) +
                 " co=" + std::to_string(g.co) + " hw=" + std::to_string(g.hw) +
                 " tc=" + std::to_string(g.time_channel));
    Conv2d conv({.in_channels = g.ci,
                 .out_channels = g.co,
                 .time_channel = g.time_channel});
    init_conv(conv, rng);
    conv.set_training(false);
    conv.set_time(0.625f);
    const auto scale = random_vec(static_cast<std::size_t>(g.co), rng);
    const auto shift = random_vec(static_cast<std::size_t>(g.co), rng);
    Tensor x = random_tensor({g.n, g.ci, g.hw, g.hw}, rng);

    Tensor plain = conv.forward(x);
    ConvEpilogue ep;
    ep.scale = scale.data();
    ep.shift = shift.data();
    ep.relu = true;
    Tensor fused;
    conv.forward_fused(x, ep, fused, /*accumulate=*/false);
    ASSERT_TRUE(fused.same_shape(plain));

    // Scalar composition of the same chain; fused must be bitwise equal.
    const std::size_t plane =
        static_cast<std::size_t>(plain.dim(2)) * plain.dim(3);
    Tensor want = plain;
    for (int ni = 0; ni < g.n; ++ni) {
      for (int c = 0; c < g.co; ++c) {
        float* p = want.data() +
                   (static_cast<std::size_t>(ni) * g.co + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          float t = p[i] * scale[c] + shift[c];
          p[i] = t > 0.0f ? t : 0.0f;
        }
      }
    }
    EXPECT_EQ(0, std::memcmp(fused.data(), want.data(),
                             fused.numel() * sizeof(float)))
        << "overwrite mode";

    // accumulate = true: out += ep(conv(x)).
    Tensor acc = random_tensor(plain.shape(), rng);
    Tensor expect_acc = acc;
    for (std::size_t i = 0; i < acc.numel(); ++i) {
      expect_acc.data()[i] = expect_acc.data()[i] + want.data()[i];
    }
    conv.forward_fused(x, ep, acc, /*accumulate=*/true);
    EXPECT_EQ(0, std::memcmp(acc.data(), expect_acc.data(),
                             acc.numel() * sizeof(float)))
        << "accumulate mode";
  }
}

TEST(FusedEpilogue, BlockFusedBranchMatchesUnfusedBitwise) {
  // At alpha = 1 the fused branch applies exactly the same float ops as
  // conv -> BN(folded affine) -> ReLU -> conv -> BN, so enabling fusion
  // must not change a single bit of the branch output.
  ou::Rng rng(29);
  for (int ch : {3, 8}) {
    for (int n : {1, 2}) {
      SCOPED_TRACE("ch=" + std::to_string(ch) + " n=" + std::to_string(n));
      BuildingBlock block({.in_channels = ch,
                           .out_channels = ch,
                           .stride = 1,
                           .time_channel = true});
      init_block(block, rng);
      randomize_bn(block.bn1(), rng);
      randomize_bn(block.bn2(), rng);
      block.set_training(false);
      Tensor x = random_tensor({n, ch, 6, 6}, rng);

      ASSERT_TRUE(block.fused_eval_ready());
      Tensor fused = block.branch_forward(x, 0.5f);
      Tensor fused_fwd = block.forward(x);
      Tensor unfused, unfused_fwd;
      {
        FusedOverride off(false);
        ASSERT_FALSE(block.fused_eval_ready());
        unfused = block.branch_forward(x, 0.5f);
        unfused_fwd = block.forward(x);
      }
      ASSERT_TRUE(fused.same_shape(unfused));
      EXPECT_EQ(0, std::memcmp(fused.data(), unfused.data(),
                               fused.numel() * sizeof(float)))
          << "branch_forward";
      EXPECT_EQ(0, std::memcmp(fused_fwd.data(), unfused_fwd.data(),
                               fused_fwd.numel() * sizeof(float)))
          << "forward";
    }
  }
}

TEST(FusedEpilogue, BlockFusedEulerStepMatchesUnfused) {
  // z += h * f(z, t) with h folded into the bn2 coefficients — one float
  // regrouping vs the unfused h-scaled axpy, so tolerance, not bitwise.
  ou::Rng rng(30);
  BuildingBlock block({.in_channels = 4,
                       .out_channels = 4,
                       .stride = 1,
                       .time_channel = true});
  init_block(block, rng);
  randomize_bn(block.bn1(), rng);
  randomize_bn(block.bn2(), rng);
  block.set_training(false);
  Tensor z0 = random_tensor({2, 4, 6, 6}, rng);
  const float h = 0.25f;

  Tensor z_fused = z0;
  ASSERT_TRUE(block.fused_eval_ready());
  block.fused_euler_step(z_fused, 1.5f, h);

  Tensor z_ref = z0;
  {
    FusedOverride off(false);
    Tensor k1 = block.branch_forward(z_ref, 1.5f);
    z_ref.axpy(h, k1);
  }
  EXPECT_LE(max_abs_diff(z_fused.data(), z_ref.data(), z_ref.numel()), 1e-5);
}

TEST(FusedEpilogue, TrainingModeIsUntouched) {
  ou::Rng rng(31);
  BuildingBlock block({.in_channels = 3,
                       .out_channels = 3,
                       .stride = 1,
                       .time_channel = true});
  init_block(block, rng);
  block.set_training(true);
  EXPECT_FALSE(block.fused_eval_ready());

  // Training forward/backward runs identically whether the fused flag is
  // on or off — the gate keys off training mode, not just the toggle.
  Tensor x = random_tensor({2, 3, 5, 5}, rng);
  block.bn1().set_use_batch_stats_in_eval(true);  // deterministic replay
  block.bn2().set_use_batch_stats_in_eval(true);
  Tensor on = block.forward(x);
  Tensor g_on = block.backward(Tensor::full(on.shape(), 0.5f));
  Tensor off_out, g_off;
  {
    FusedOverride off(false);
    off_out = block.forward(x);
    g_off = block.backward(Tensor::full(on.shape(), 0.5f));
  }
  EXPECT_EQ(0, std::memcmp(on.data(), off_out.data(),
                           on.numel() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(g_on.data(), g_off.data(),
                           g_on.numel() * sizeof(float)));

  // Batch-stat eval also blocks fusion (the affine is not fixed).
  block.set_training(false);
  EXPECT_FALSE(block.fused_eval_ready());
  block.bn1().set_use_batch_stats_in_eval(false);
  block.bn2().set_use_batch_stats_in_eval(false);
  EXPECT_TRUE(block.fused_eval_ready());
  set_fused_epilogues(false);
  EXPECT_FALSE(block.fused_eval_ready());
  set_fused_epilogues(true);
  EXPECT_TRUE(fused_epilogues_enabled());
}

TEST(FusedEpilogue, OdeBlockFusedSolveMatchesUnfused) {
  ou::Rng rng(32);
  for (auto method : {os::Method::kEuler, os::Method::kHeun, os::Method::kRk4}) {
    SCOPED_TRACE(os::method_name(method));
    om::OdeBlock ob({.channels = 4, .executions = 4, .method = method});
    init_block(ob.block(), rng);
    randomize_bn(ob.block().bn1(), rng);
    randomize_bn(ob.block().bn2(), rng);
    ob.set_training(false);
    Tensor x = random_tensor({2, 4, 6, 6}, rng);

    Tensor fused = ob.forward(x);
    Tensor unfused;
    {
      FusedOverride off(false);
      unfused = ob.forward(x);
    }
    // Euler folds h per step (one regrouping per step); heun/rk4 run the
    // same eval + axpy sequence either way.
    EXPECT_LE(max_abs_diff(fused.data(), unfused.data(), fused.numel()), 1e-5);
  }
}

TEST(FusedEpilogue, SolverLoopMatchesExportedStepsBitwise) {
  // The restructured in-place fixed-step loop — with AND without caller
  // scratch — reproduces repeated euler_step/heun_step/rk4_step exactly.
  ou::Rng rng(33);
  Tensor z0 = random_tensor({2, 3, 4, 4}, rng);
  os::FunctionDynamics f([](const Tensor& z, float t) {
    Tensor out = z;
    out.scale(-0.3f + 0.05f * t);
    return out;
  });
  const int steps = 5;
  const float t0 = 0.0f, t1 = 1.0f;
  for (auto method : {os::Method::kEuler, os::Method::kHeun, os::Method::kRk4}) {
    SCOPED_TRACE(os::method_name(method));
    Tensor want = z0;
    const float h = (t1 - t0) / static_cast<float>(steps);
    for (int i = 0; i < steps; ++i) {
      const float t = t0 + h * static_cast<float>(i);
      switch (method) {
        case os::Method::kEuler: want = os::euler_step(f, want, t, h); break;
        case os::Method::kHeun: want = os::heun_step(f, want, t, h); break;
        case os::Method::kRk4: want = os::rk4_step(f, want, t, h); break;
        default: break;
      }
    }
    os::SolveOptions opts;
    opts.method = method;
    opts.steps = steps;
    Tensor no_scratch = os::ode_solve(f, z0, t0, t1, opts);
    os::StepScratch scratch;
    opts.scratch = &scratch;
    Tensor with_scratch = os::ode_solve(f, z0, t0, t1, opts);
    EXPECT_EQ(0, std::memcmp(no_scratch.data(), want.data(),
                             want.numel() * sizeof(float)))
        << "no scratch";
    EXPECT_EQ(0, std::memcmp(with_scratch.data(), want.data(),
                             want.numel() * sizeof(float)))
        << "with scratch";
  }
}

TEST(FusedEpilogue, OdeBlockStepsWithoutAllocationAfterWarmup) {
  ou::Rng rng(34);
  om::OdeBlock ob({.channels = 4, .executions = 6});
  init_block(ob.block(), rng);
  randomize_bn(ob.block().bn1(), rng);
  randomize_bn(ob.block().bn2(), rng);
  ob.set_training(false);
  ASSERT_TRUE(ob.block().fused_eval_ready());
  Tensor x = random_tensor({2, 4, 8, 8}, rng);

  (void)ob.forward(x);  // warmup: arenas grow, packs build, scratch sizes
  (void)ob.forward(x);
  const std::uint64_t g1 = ob.block().conv1().scratch_arena().growths();
  const std::uint64_t g2 = ob.block().conv2().scratch_arena().growths();
  for (int i = 0; i < 5; ++i) (void)ob.forward(x);
  EXPECT_EQ(ob.block().conv1().scratch_arena().growths(), g1);
  EXPECT_EQ(ob.block().conv2().scratch_arena().growths(), g2);
}

TEST(FusedEpilogue, ShortcutMatchesReferenceWalk) {
  // The memcpy/strided-copy rewrite against the original per-element
  // reference, including odd extents, stride 2 and channel padding.
  ou::Rng rng(35);
  struct Geo {
    int n, c, h, w, stride, co;
  };
  const Geo geos[] = {
      {1, 4, 6, 6, 1, 4},  {2, 3, 5, 7, 2, 6}, {1, 2, 4, 4, 2, 4},
      {3, 5, 9, 9, 2, 5},  {2, 4, 7, 5, 2, 8}, {1, 1, 1, 1, 2, 2},
  };
  for (const Geo& g : geos) {
    SCOPED_TRACE("n=" + std::to_string(g.n) + " c=" + std::to_string(g.c) +
                 " h=" + std::to_string(g.h) + " w=" + std::to_string(g.w) +
                 " s=" + std::to_string(g.stride) +
                 " co=" + std::to_string(g.co));
    Tensor x = random_tensor({g.n, g.c, g.h, g.w}, rng);
    Tensor got = BuildingBlock::shortcut(x, g.stride, g.co);

    const int ho = (g.h + g.stride - 1) / g.stride;
    const int wo = (g.w + g.stride - 1) / g.stride;
    Tensor want({g.n, g.co, ho, wo});
    for (int ni = 0; ni < g.n; ++ni) {
      for (int ci = 0; ci < std::min(g.c, g.co); ++ci) {
        for (int hi = 0; hi < ho; ++hi) {
          for (int wi = 0; wi < wo; ++wi) {
            want.at(ni, ci, hi, wi) =
                x.at(ni, ci, hi * g.stride, wi * g.stride);
          }
        }
      }
    }
    ASSERT_TRUE(got.same_shape(want));
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.numel() * sizeof(float)));

    // Adjoint: scatter grad back, everything off-grid stays zero.
    Tensor gout = random_tensor(got.shape(), rng);
    Tensor gin = BuildingBlock::shortcut_backward(gout, x.shape(), g.stride);
    Tensor gin_want(x.shape());
    for (int ni = 0; ni < g.n; ++ni) {
      for (int ci = 0; ci < std::min(g.c, g.co); ++ci) {
        for (int hi = 0; hi < ho; ++hi) {
          for (int wi = 0; wi < wo; ++wi) {
            if (hi * g.stride < g.h && wi * g.stride < g.w) {
              gin_want.at(ni, ci, hi * g.stride, wi * g.stride) =
                  gout.at(ni, ci, hi, wi);
            }
          }
        }
      }
    }
    EXPECT_EQ(0, std::memcmp(gin.data(), gin_want.data(),
                             gin.numel() * sizeof(float)));
  }
}
