// ReLU, Linear, GlobalAvgPool, SoftmaxCrossEntropy.
#include <gtest/gtest.h>

#include <cmath>

#include "core/activation.hpp"
#include "core/init.hpp"
#include "core/linear.hpp"
#include "core/pooling.hpp"
#include "core/softmax.hpp"
#include "util/rng.hpp"

using namespace odenet::core;
namespace ou = odenet::util;

namespace {
Tensor random_tensor(std::vector<int> shape, ou::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}
}  // namespace

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x({4});
  x.at1(0) = -1;
  x.at1(1) = 0;
  x.at1(2) = 2;
  x.at1(3) = -0.5;
  Tensor y = relu.forward(x);
  EXPECT_EQ(y.at1(0), 0.0f);
  EXPECT_EQ(y.at1(1), 0.0f);
  EXPECT_EQ(y.at1(2), 2.0f);
  EXPECT_EQ(y.at1(3), 0.0f);
}

TEST(ReLU, BackwardMasks) {
  ReLU relu;
  relu.set_training(true);
  Tensor x({3});
  x.at1(0) = -1;
  x.at1(1) = 3;
  x.at1(2) = 0;  // not strictly positive -> masked
  relu.forward(x);
  Tensor g = Tensor::full({3}, 5.0f);
  Tensor gin = relu.backward(g);
  EXPECT_EQ(gin.at1(0), 0.0f);
  EXPECT_EQ(gin.at1(1), 5.0f);
  EXPECT_EQ(gin.at1(2), 0.0f);
}

TEST(ReLU, BackwardWithoutForwardThrows) {
  ReLU relu;
  relu.set_training(true);
  EXPECT_THROW(relu.backward(Tensor({2})), odenet::Error);
}

TEST(Linear, ForwardMatchesManual) {
  Linear fc(2, 3);
  fc.weight().value.at2(0, 0) = 1;
  fc.weight().value.at2(0, 1) = 2;
  fc.weight().value.at2(1, 0) = -1;
  fc.weight().value.at2(2, 1) = 0.5;
  fc.bias().value.at1(2) = 10;
  Tensor x({1, 2});
  x.at2(0, 0) = 3;
  x.at2(0, 1) = 4;
  Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 11.0f);   // 3 + 8
  EXPECT_FLOAT_EQ(y.at2(0, 1), -3.0f);   // -3
  EXPECT_FLOAT_EQ(y.at2(0, 2), 12.0f);   // 2 + 10
}

TEST(Linear, GradMatchesFiniteDifference) {
  ou::Rng rng(1);
  Linear fc(4, 3);
  init_linear(fc, rng);
  fc.set_training(true);
  Tensor x = random_tensor({2, 4}, rng);
  Tensor gout = random_tensor({2, 3}, rng);
  fc.forward(x);
  Tensor gin = fc.backward(gout);

  const float eps = 1e-3f;
  // weight grad
  float orig = fc.weight().value.at2(1, 2);
  fc.weight().value.at2(1, 2) = orig + eps;
  float up = fc.forward(x).dot(gout);
  fc.weight().value.at2(1, 2) = orig - eps;
  float dn = fc.forward(x).dot(gout);
  fc.weight().value.at2(1, 2) = orig;
  EXPECT_NEAR(fc.weight().grad.at2(1, 2), (up - dn) / (2 * eps), 1e-2f);
  // bias grad
  orig = fc.bias().value.at1(0);
  fc.bias().value.at1(0) = orig + eps;
  up = fc.forward(x).dot(gout);
  fc.bias().value.at1(0) = orig - eps;
  dn = fc.forward(x).dot(gout);
  fc.bias().value.at1(0) = orig;
  EXPECT_NEAR(fc.bias().grad.at1(0), (up - dn) / (2 * eps), 1e-2f);
  // input grad
  orig = x.at2(0, 1);
  x.at2(0, 1) = orig + eps;
  up = fc.forward(x).dot(gout);
  x.at2(0, 1) = orig - eps;
  dn = fc.forward(x).dot(gout);
  x.at2(0, 1) = orig;
  EXPECT_NEAR(gin.at2(0, 1), (up - dn) / (2 * eps), 1e-2f);
}

// The fc layer now runs on the register-blocked tiled GEMM kernels
// (gemm_bt_tiled forward, gemm_tiled/gemm_at backward); parity-check a
// non-trivial random case against the legacy per-element loops.
TEST(Linear, TiledKernelsMatchLegacyLoops) {
  ou::Rng rng(7);
  const int n = 9, in = 23, out = 13;
  Linear fc(in, out);
  init_linear(fc, rng);
  fc.set_training(true);
  Tensor x = random_tensor({n, in}, rng);
  Tensor gout = random_tensor({n, out}, rng);

  Tensor y = fc.forward(x);
  Tensor gin = fc.backward(gout);

  // Legacy forward: out[ni,o] = b[o] + sum_i W[o,i] * x[ni,i].
  for (int ni = 0; ni < n; ++ni) {
    for (int o = 0; o < out; ++o) {
      double acc = fc.bias().value.at1(o);
      for (int i = 0; i < in; ++i) {
        acc += static_cast<double>(fc.weight().value.at2(o, i)) *
               x.at2(ni, i);
      }
      EXPECT_NEAR(y.at2(ni, o), static_cast<float>(acc), 1e-4f)
          << ni << "," << o;
    }
  }
  // Legacy backward: dW[o,i] = sum_n g[n,o] x[n,i]; db[o] = sum_n g[n,o];
  // dX[n,i] = sum_o g[n,o] W[o,i].
  for (int o = 0; o < out; ++o) {
    double gb = 0.0;
    for (int ni = 0; ni < n; ++ni) gb += gout.at2(ni, o);
    EXPECT_NEAR(fc.bias().grad.at1(o), static_cast<float>(gb), 1e-4f) << o;
    for (int i = 0; i < in; ++i) {
      double gw = 0.0;
      for (int ni = 0; ni < n; ++ni) {
        gw += static_cast<double>(gout.at2(ni, o)) * x.at2(ni, i);
      }
      EXPECT_NEAR(fc.weight().grad.at2(o, i), static_cast<float>(gw), 1e-4f)
          << o << "," << i;
    }
  }
  for (int ni = 0; ni < n; ++ni) {
    for (int i = 0; i < in; ++i) {
      double gx = 0.0;
      for (int o = 0; o < out; ++o) {
        gx += static_cast<double>(gout.at2(ni, o)) *
              fc.weight().value.at2(o, i);
      }
      EXPECT_NEAR(gin.at2(ni, i), static_cast<float>(gx), 1e-4f)
          << ni << "," << i;
    }
  }
}

TEST(Linear, ParamCountMatchesPaperFc) {
  Linear fc(64, 100);
  EXPECT_EQ(fc.param_count(), 6500u);  // 26.00 kB in Table 2
}

TEST(GlobalAvgPool, AveragesPlane) {
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2});
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 0, 0, 1) = 2;
  x.at(0, 0, 1, 0) = 3;
  x.at(0, 0, 1, 1) = 4;
  x.at(0, 1, 0, 0) = 10;
  Tensor y = gap.forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 2.5f);
}

TEST(GlobalAvgPool, BackwardSpreadsUniformly) {
  GlobalAvgPool gap;
  gap.set_training(true);
  gap.forward(Tensor({1, 1, 4, 4}));
  Tensor g({1, 1});
  g.at2(0, 0) = 16.0f;
  Tensor gin = gap.backward(g);
  for (int h = 0; h < 4; ++h)
    for (int w = 0; w < 4; ++w) EXPECT_FLOAT_EQ(gin.at(0, 0, h, w), 1.0f);
}

TEST(Softmax, RowsSumToOne) {
  ou::Rng rng(2);
  Tensor logits = random_tensor({5, 10}, rng);
  Tensor p = SoftmaxCrossEntropy::softmax(logits);
  for (int i = 0; i < 5; ++i) {
    double sum = 0;
    for (int c = 0; c < 10; ++c) {
      EXPECT_GE(p.at2(i, c), 0.0f);
      sum += p.at2(i, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableForHugeLogits) {
  Tensor logits({1, 3});
  logits.at2(0, 0) = 1e4f;
  logits.at2(0, 1) = 1e4f - 1;
  logits.at2(0, 2) = -1e4f;
  Tensor p = SoftmaxCrossEntropy::softmax(logits);
  EXPECT_TRUE(std::isfinite(p.at2(0, 0)));
  EXPECT_GT(p.at2(0, 0), p.at2(0, 1));
  EXPECT_NEAR(p.at2(0, 2), 0.0f, 1e-6f);
}

TEST(Softmax, UniformLogitsGiveLogCLoss) {
  Tensor logits({2, 4});  // all zeros
  SoftmaxCrossEntropy ce;
  const float loss = ce.loss(logits, {0, 3});
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
}

TEST(Softmax, PerfectPredictionLowLoss) {
  Tensor logits({1, 3});
  logits.at2(0, 1) = 50.0f;
  SoftmaxCrossEntropy ce;
  EXPECT_LT(ce.loss(logits, {1}), 1e-4f);
}

TEST(Softmax, BackwardIsSoftmaxMinusOnehotOverN) {
  Tensor logits({2, 3});
  logits.at2(0, 0) = 1;
  logits.at2(1, 2) = 2;
  SoftmaxCrossEntropy ce;
  ce.loss(logits, {0, 1});
  Tensor g = ce.backward();
  Tensor p = SoftmaxCrossEntropy::softmax(logits);
  EXPECT_NEAR(g.at2(0, 0), (p.at2(0, 0) - 1) / 2, 1e-6f);
  EXPECT_NEAR(g.at2(0, 1), p.at2(0, 1) / 2, 1e-6f);
  EXPECT_NEAR(g.at2(1, 1), (p.at2(1, 1) - 1) / 2, 1e-6f);
}

TEST(Softmax, GradMatchesFiniteDifferenceOfLoss) {
  ou::Rng rng(3);
  Tensor logits = random_tensor({3, 5}, rng);
  std::vector<int> labels = {1, 4, 0};
  SoftmaxCrossEntropy ce;
  ce.loss(logits, labels);
  Tensor g = ce.backward();
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{6}, std::size_t{14}}) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + eps;
    const float up = SoftmaxCrossEntropy().loss(logits, labels);
    logits.data()[i] = orig - eps;
    const float dn = SoftmaxCrossEntropy().loss(logits, labels);
    logits.data()[i] = orig;
    EXPECT_NEAR(g.data()[i], (up - dn) / (2 * eps), 1e-3f);
  }
}

TEST(Softmax, ArgmaxPicksLargest) {
  Tensor logits({2, 3});
  logits.at2(0, 2) = 5;
  logits.at2(1, 0) = 1;
  auto pred = SoftmaxCrossEntropy::argmax(logits);
  EXPECT_EQ(pred, (std::vector<int>{2, 0}));
}

TEST(Softmax, RejectsBadLabels) {
  Tensor logits({1, 3});
  SoftmaxCrossEntropy ce;
  EXPECT_THROW(ce.loss(logits, {3}), odenet::Error);
  EXPECT_THROW(ce.loss(logits, {0, 1}), odenet::Error);
}
