// models::ModelSnapshot — the versioned weight images behind hot-swap:
// capture/apply round trips, checkpoint (v2) serialization, legacy v1 blob
// compatibility, version monotonicity, and spec-mismatch rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "models/network.hpp"
#include "models/snapshot.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

using namespace odenet;
using models::Arch;
using models::ModelSnapshot;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

models::Network make_net(std::uint64_t seed,
                         Arch arch = Arch::kROdeNet3) {
  models::Network net(models::make_spec(arch, 14, tiny_width()));
  util::Rng rng(seed);
  net.init(rng);
  return net;
}

/// Bitwise parameter equality between two networks.
void expect_params_equal(models::Network& a, models::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->name, pb[i]->name);
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value.data()[j], pb[i]->value.data()[j])
          << pa[i]->name << "[" << j << "]";
    }
  }
}

core::Tensor random_batch(util::Rng& rng, int n = 2) {
  core::Tensor x({n, 3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return x;
}

}  // namespace

TEST(ModelSnapshot, VersionsAreStrictlyMonotonic) {
  models::Network net = make_net(1);
  const auto a = net.export_snapshot();
  const auto b = net.export_snapshot();
  const auto c = ModelSnapshot::capture(net);
  EXPECT_GT(a->version(), 0u);
  EXPECT_GT(b->version(), a->version());
  EXPECT_GT(c->version(), b->version());
}

TEST(ModelSnapshot, CaptureApplyRoundTripIsBitwise) {
  models::Network a = make_net(2);
  models::Network b = make_net(3);  // different init
  const auto snap = a.export_snapshot();
  EXPECT_TRUE(snap->has_spec());
  EXPECT_GT(snap->param_floats(), 0u);
  b.apply_snapshot(*snap);
  expect_params_equal(a, b);

  // Applied weights behave identically, not just compare equal.
  a.set_training(false);
  b.set_training(false);
  util::Rng rng(33);
  core::Tensor x = random_batch(rng);
  core::Tensor la = a.forward(x);
  core::Tensor lb = b.forward(x);
  for (std::size_t i = 0; i < la.numel(); ++i) {
    EXPECT_EQ(la.data()[i], lb.data()[i]) << "logit " << i;
  }
}

TEST(ModelSnapshot, SaveLoadRoundTripKeepsWeightsAndProvenance) {
  models::Network a = make_net(4);
  const auto snap = a.export_snapshot();
  std::stringstream ss;
  snap->save(ss);
  const auto loaded = ModelSnapshot::load(ss);
  // Version ids are process-unique hot-swap tokens: the load gets a FRESH
  // id (ids from other processes could collide), while the id the file
  // was saved under survives as provenance.
  EXPECT_GT(loaded->version(), snap->version());
  EXPECT_EQ(loaded->saved_version(), snap->version());
  EXPECT_EQ(snap->saved_version(), 0u);  // fresh captures have none
  ASSERT_TRUE(loaded->has_spec());
  EXPECT_EQ(loaded->spec().arch, Arch::kROdeNet3);
  EXPECT_EQ(loaded->spec().n, 14);
  ASSERT_EQ(loaded->params().size(), snap->params().size());
  for (std::size_t i = 0; i < snap->params().size(); ++i) {
    EXPECT_EQ(loaded->params()[i].name, snap->params()[i].name);
    EXPECT_EQ(loaded->params()[i].values, snap->params()[i].values);
  }
  // A capture after loading stays newer than the stored id.
  EXPECT_GT(a.export_snapshot()->version(), loaded->version());
}

TEST(ModelSnapshot, NetworkCheckpointWrappersRoundTrip) {
  models::Network a = make_net(5);
  models::Network b = make_net(6);
  std::stringstream ss;
  a.save_weights(ss);
  b.load_weights(ss);
  expect_params_equal(a, b);
}

TEST(ModelSnapshot, LegacyV1BlobStillLoads) {
  models::Network a = make_net(7);
  const auto snap = a.export_snapshot();
  // Re-create the pre-snapshot checkpoint layout by hand: v1 header, then
  // params, then BN running statistics — no descriptor, no version id.
  std::stringstream ss;
  util::BinaryWriter w(ss);
  util::write_weights_header(w, util::kWeightsVersion);
  w.write_u64(snap->params().size());
  for (const auto& p : snap->params()) {
    w.write_string(p.name);
    w.write_floats(p.values);
  }
  w.write_u64(snap->bn_stats().size());
  for (const auto& bn : snap->bn_stats()) {
    w.write_floats(bn.mean);
    w.write_floats(bn.var);
  }

  const auto legacy = ModelSnapshot::load(ss);
  EXPECT_FALSE(legacy->has_spec());
  EXPECT_GT(legacy->version(), snap->version());  // assigned fresh
  EXPECT_EQ(legacy->saved_version(), 0u);         // v1 stores no id
  models::Network b = make_net(8);
  b.apply_snapshot(*legacy);  // param-name validation still applies
  expect_params_equal(a, b);
  // But a v1 image cannot be spec-checked or re-exported as-is.
  EXPECT_THROW(legacy->check_compatible(a.spec()), odenet::Error);
  std::stringstream out;
  EXPECT_THROW(legacy->save(out), odenet::Error);
}

TEST(ModelSnapshot, SpecMismatchIsRejected) {
  models::Network ode = make_net(9, Arch::kROdeNet3);
  models::Network resnet = make_net(10, Arch::kResNet);
  const auto snap = ode.export_snapshot();
  EXPECT_THROW(snap->check_compatible(resnet.spec()), odenet::Error);
  EXPECT_THROW(resnet.apply_snapshot(*snap), odenet::Error);

  // Same architecture, different width: also rejected.
  models::WidthConfig wide = tiny_width();
  wide.base_channels = 8;
  models::Network wider(models::make_spec(Arch::kROdeNet3, 14, wide));
  EXPECT_THROW(wider.apply_snapshot(*snap), odenet::Error);

  // The matching network passes.
  EXPECT_NO_THROW(snap->check_compatible(ode.spec()));
}

TEST(ModelSnapshot, TruncatedStreamFailsLoudly) {
  models::Network a = make_net(11);
  std::stringstream ss;
  a.save_weights(ss);
  const std::string blob = ss.str();
  std::stringstream truncated(blob.substr(0, blob.size() / 2));
  EXPECT_THROW((void)ModelSnapshot::load(truncated), odenet::Error);
}

TEST(ModelSnapshot, SharedImageSurvivesSourceMutation) {
  models::Network a = make_net(12);
  const auto snap = a.export_snapshot();
  const std::vector<float> frozen = snap->params()[0].values;
  // Mutate the source network after capture; the snapshot is immutable.
  a.params()[0]->value.fill(123.0f);
  EXPECT_EQ(snap->params()[0].values, frozen);
  // And applying it restores the captured weights.
  a.apply_snapshot(*snap);
  EXPECT_EQ(a.params()[0]->value.data()[0], frozen[0]);
}
