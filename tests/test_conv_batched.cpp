// Batched im2col+GEMM conv fast path: property-style parity sweep.
//
// The batched lowering (one column matrix + one GEMM for the whole
// micro-batch, arena-backed scratch) must agree with BOTH independent
// implementations — the direct tap-walking kernel and the legacy
// per-sample im2col — forward and backward (dW and dX), across randomized
// geometries: kernel {1,3,5}, stride {1,2}, pad {0,1,2}, batch
// {1,2,7,16}, non-square H != W, with and without the concat-time
// channel. Max abs error <= 1e-4 everywhere. Also pins down the scratch
// behaviour (no regrowth after the first call) and the n = 0 and
// pad-only-edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/conv2d.hpp"
#include "core/init.hpp"
#include "util/rng.hpp"

using namespace odenet::core;
namespace ou = odenet::util;

namespace {

constexpr float kTol = 1e-4f;

Tensor random_tensor(std::vector<int> shape, ou::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b)) << a.shape_str() << " vs " << b.shape_str();
  double diff = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(a.data()[i]) -
                                    b.data()[i]));
  }
  return diff;
}

struct Geometry {
  int n, cin, cout, h, w, k, s, p;
  bool time_channel;

  std::string str() const {
    return "n=" + std::to_string(n) + " cin=" + std::to_string(cin) +
           " cout=" + std::to_string(cout) + " h=" + std::to_string(h) +
           " w=" + std::to_string(w) + " k=" + std::to_string(k) +
           " s=" + std::to_string(s) + " p=" + std::to_string(p) +
           (time_channel ? " tc" : "");
  }
};

Conv2d make_conv(const Geometry& g, ConvAlgo algo) {
  return Conv2d({.in_channels = g.cin,
                 .out_channels = g.cout,
                 .kernel = g.k,
                 .stride = g.s,
                 .pad = g.p,
                 .time_channel = g.time_channel,
                 .algo = algo});
}

/// Forward + backward parity of the batched path against direct and
/// per-sample, on one geometry. All three share identical weights.
void check_parity(const Geometry& g, ou::Rng& rng) {
  SCOPED_TRACE(g.str());
  Conv2d direct = make_conv(g, ConvAlgo::kDirect);
  init_conv(direct, rng);
  Conv2d per_sample = make_conv(g, ConvAlgo::kIm2colPerSample);
  per_sample.weight().value = direct.weight().value;
  Conv2d batched = make_conv(g, ConvAlgo::kIm2col);
  batched.weight().value = direct.weight().value;

  for (Conv2d* c : {&direct, &per_sample, &batched}) {
    c->set_training(true);
    c->set_time(0.6f);
  }

  Tensor x = random_tensor({g.n, g.cin, g.h, g.w}, rng);
  Tensor y_direct = direct.forward(x);
  Tensor y_per_sample = per_sample.forward(x);
  Tensor y_batched = batched.forward(x);
  EXPECT_LE(max_abs_diff(y_batched, y_direct), kTol) << "fwd vs direct";
  EXPECT_LE(max_abs_diff(y_batched, y_per_sample), kTol)
      << "fwd vs per-sample";

  Tensor gout = random_tensor(y_direct.shape(), rng);
  Tensor gx_direct = direct.backward(gout);
  Tensor gx_per_sample = per_sample.backward(gout);
  Tensor gx_batched = batched.backward(gout);
  EXPECT_LE(max_abs_diff(gx_batched, gx_direct), kTol) << "dX vs direct";
  EXPECT_LE(max_abs_diff(gx_batched, gx_per_sample), kTol)
      << "dX vs per-sample";
  EXPECT_LE(max_abs_diff(batched.weight().grad, direct.weight().grad), kTol)
      << "dW vs direct";
  EXPECT_LE(
      max_abs_diff(batched.weight().grad, per_sample.weight().grad), kTol)
      << "dW vs per-sample";
}

}  // namespace

TEST(ConvBatchedParity, RandomizedGeometrySweep) {
  // Full kernel/stride/pad grid; batch sizes cycle through {1,2,7,16} and
  // every spatial extent is randomized non-square (H != W).
  const int batches[] = {1, 2, 7, 16};
  ou::Rng rng(42);
  int case_index = 0;
  for (int k : {1, 3, 5}) {
    for (int s : {1, 2}) {
      for (int p : {0, 1, 2}) {
        Geometry g;
        g.k = k;
        g.s = s;
        g.p = p;
        g.n = batches[case_index % 4];
        g.cin = 1 + case_index % 4;
        g.cout = 1 + (case_index / 2) % 5;
        // Non-square, valid for the kernel: in + 2p >= k.
        const int h_min = std::max(1, k - 2 * p);
        g.h = h_min + static_cast<int>(rng.uniform_int(6));
        do {
          g.w = h_min + static_cast<int>(rng.uniform_int(6));
        } while (g.w == g.h);
        g.time_channel = (case_index % 3 == 0);
        check_parity(g, rng);
        ++case_index;
      }
    }
  }
  EXPECT_EQ(case_index, 18);
}

TEST(ConvBatchedParity, LargeBatchOdeBlockShape) {
  // The shape that matters for the paper's ODEBlock (layer3_2-like,
  // narrowed channels): concat-time conv at batch 16.
  ou::Rng rng(7);
  Geometry g{.n = 16, .cin = 8, .cout = 8, .h = 8, .w = 8, .k = 3, .s = 1,
             .p = 1, .time_channel = true};
  check_parity(g, rng);
}

TEST(ConvBatchedParity, PadOnlyEdgeRows) {
  // h = 1 with k = 3, p = 1: every output row reads two padding rows —
  // the receptive field touches real data only through its center row.
  ou::Rng rng(8);
  check_parity({.n = 2, .cin = 2, .cout = 3, .h = 1, .w = 4, .k = 3, .s = 1,
                .p = 1, .time_channel = false},
               rng);
  // k = 5 with p = 2 over a 2x3 input: outputs exist only because of the
  // padding ring.
  check_parity({.n = 3, .cin = 1, .cout = 2, .h = 2, .w = 3, .k = 5, .s = 1,
                .p = 2, .time_channel = false},
               rng);
}

TEST(ConvBatchedParity, RejectsEmptyBatch) {
  for (ConvAlgo algo :
       {ConvAlgo::kIm2col, ConvAlgo::kIm2colPerSample, ConvAlgo::kDirect}) {
    Conv2d conv({.in_channels = 3, .out_channels = 4, .algo = algo});
    EXPECT_THROW(conv.forward(Tensor({0, 3, 8, 8})), odenet::Error);
  }
}

TEST(ConvBatchedParity, ScratchArenaStopsGrowingAfterFirstCall) {
  ou::Rng rng(9);
  Conv2d conv({.in_channels = 4, .out_channels = 6});
  init_conv(conv, rng);
  conv.set_training(true);
  Tensor x = random_tensor({7, 4, 9, 5}, rng);
  Tensor gout;

  conv.forward(x);
  gout = random_tensor({7, 6, 9, 5}, rng);
  conv.backward(gout);
  const std::size_t capacity = conv.scratch_arena().capacity();
  const std::uint64_t growths = conv.scratch_arena().growths();
  EXPECT_GT(capacity, 0u);

  // Steady state: same shapes, zero further growth, same capacity.
  for (int i = 0; i < 3; ++i) {
    conv.forward(x);
    conv.backward(gout);
  }
  EXPECT_EQ(conv.scratch_arena().capacity(), capacity);
  EXPECT_EQ(conv.scratch_arena().growths(), growths);

  // A smaller batch recycles the buffer too.
  Tensor x_small = random_tensor({2, 4, 9, 5}, rng);
  conv.forward(x_small);
  EXPECT_EQ(conv.scratch_arena().growths(), growths);
}

TEST(ConvBatchedParity, ExternalArenaIsShared) {
  ou::Rng rng(10);
  ScratchArena arena;
  Conv2d a({.in_channels = 2, .out_channels = 3});
  Conv2d b({.in_channels = 3, .out_channels = 2});
  init_conv(a, rng);
  init_conv(b, rng);
  a.set_arena(&arena);
  b.set_arena(&arena);

  Tensor x = random_tensor({4, 2, 6, 7}, rng);
  Tensor h = a.forward(x);
  (void)b.forward(h);
  // Both layers drew from the one arena; its capacity is the max of the
  // two frames, and the wired arena is what scratch_arena() reports.
  EXPECT_EQ(&a.scratch_arena(), &arena);
  EXPECT_EQ(&b.scratch_arena(), &arena);
  EXPECT_GT(arena.capacity(), 0u);
  EXPECT_EQ(arena.frames(), 2u);
}

// --- packed-weight cache vs object lifetime / snapshot stamping ---------
//
// The packed-weight cache OWNS its storage (a std::vector inside the
// layer), so moving a Network must neither dangle nor stale the cache,
// and apply_snapshot must re-key every layer to the snapshot's version.
#include "models/network.hpp"
#include "models/snapshot.hpp"

TEST(PackedWeightCache, NetworkMoveCtorKeepsPackedWeightsValid) {
  ou::Rng rng(20);
  odenet::models::Network net(odenet::models::make_spec(
      odenet::models::Arch::kROdeNet3, 14,
      {.input_channels = 3, .input_size = 16, .base_channels = 4,
       .num_classes = 5}));
  net.init(rng);
  net.set_training(false);
  // Stamp non-zero weight versions (serving steady state: packs cached).
  net.apply_snapshot(*net.export_snapshot());

  Tensor x = random_tensor({2, 3, 16, 16}, rng);
  Tensor before = net.forward(x);  // builds + caches every packed weight

  odenet::models::Network moved(std::move(net));
  Tensor after = moved.forward(x);  // must reuse or rebuild safely
  ASSERT_TRUE(before.same_shape(after));
  for (std::size_t i = 0; i < before.numel(); ++i) {
    ASSERT_EQ(before.data()[i], after.data()[i]) << "element " << i;
  }
}

TEST(PackedWeightCache, ApplySnapshotStampsVersionsAndRepacksOnce) {
  ou::Rng rng(21);
  odenet::models::Network net(odenet::models::make_spec(
      odenet::models::Arch::kROdeNet3, 14,
      {.input_channels = 3, .input_size = 16, .base_channels = 4,
       .num_classes = 5}));
  net.init(rng);
  net.set_training(false);

  // Freshly initialized weights are unversioned.
  net.for_each_conv(
      [](Conv2d& c) { EXPECT_EQ(c.weight_version(), 0u); });

  auto snap = net.export_snapshot();
  net.apply_snapshot(*snap);
  net.for_each_conv([&](Conv2d& c) {
    EXPECT_EQ(c.weight_version(), snap->version());
  });

  // Steady state: repeated forwards pack each conv exactly once.
  Tensor x = random_tensor({2, 3, 16, 16}, rng);
  (void)net.forward(x);
  std::uint64_t packs_after_first = 0;
  net.for_each_conv(
      [&](Conv2d& c) { packs_after_first += c.weight_packs(); });
  (void)net.forward(x);
  (void)net.forward(x);
  std::uint64_t packs_after_third = 0;
  net.for_each_conv(
      [&](Conv2d& c) { packs_after_third += c.weight_packs(); });
  EXPECT_EQ(packs_after_third, packs_after_first);

  // A new snapshot version invalidates every cache once.
  auto snap2 = net.export_snapshot();
  ASSERT_NE(snap2->version(), snap->version());
  net.apply_snapshot(*snap2);
  (void)net.forward(x);
  std::uint64_t packs_after_swap = 0;
  net.for_each_conv(
      [&](Conv2d& c) { packs_after_swap += c.weight_packs(); });
  EXPECT_GT(packs_after_swap, packs_after_third);
}
