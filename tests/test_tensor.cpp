// Unit tests for core::Tensor.
#include <gtest/gtest.h>

#include "core/tensor.hpp"

using odenet::core::Tensor;
using odenet::core::shape_numel;

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.ndim(), 4);
  EXPECT_EQ(t.numel(), 120u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(3), 5);
  EXPECT_THROW(t.dim(4), odenet::Error);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 3});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({2, 2}, 7.0f);
  EXPECT_EQ(t.at2(1, 1), 7.0f);
  t.fill(-1.0f);
  EXPECT_EQ(t.at2(0, 0), -1.0f);
  t.zero();
  EXPECT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, FourDAccessorRowMajor) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 42.0f;
  // NCHW row-major: offset = ((n*C + c)*H + h)*W + w
  EXPECT_EQ(t.data()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 42.0f);
}

TEST(Tensor, TwoDAccessor) {
  Tensor t({3, 4});
  t.at2(2, 1) = 5.0f;
  EXPECT_EQ(t.data()[2 * 4 + 1], 5.0f);
}

TEST(Tensor, ScaleAxpyMul) {
  Tensor a = Tensor::full({4}, 2.0f);
  Tensor b = Tensor::full({4}, 3.0f);
  a.scale(2.0f);           // 4
  a.axpy(0.5f, b);         // 4 + 1.5 = 5.5
  EXPECT_FLOAT_EQ(a.at1(0), 5.5f);
  a.mul(b);                // 16.5
  EXPECT_FLOAT_EQ(a.at1(3), 16.5f);
  a.add(b);                // 19.5
  EXPECT_FLOAT_EQ(a.at1(1), 19.5f);
}

TEST(Tensor, AxpyShapeMismatchThrows) {
  Tensor a({2, 2}), b({4});
  EXPECT_THROW(a.axpy(1.0f, b), odenet::Error);
  EXPECT_THROW(a.mul(b), odenet::Error);
  EXPECT_THROW(a.dot(b), odenet::Error);
}

TEST(Tensor, Reductions) {
  Tensor t({4});
  t.at1(0) = 1;
  t.at1(1) = -5;
  t.at1(2) = 3;
  t.at1(3) = 0.5;
  EXPECT_FLOAT_EQ(t.sum(), -0.5f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
  EXPECT_FLOAT_EQ(t.sqnorm(), 1 + 25 + 9 + 0.25f);
}

TEST(Tensor, Dot) {
  Tensor a({3}), b({3});
  for (int i = 0; i < 3; ++i) {
    a.at1(i) = static_cast<float>(i + 1);
    b.at1(i) = 2.0f;
  }
  EXPECT_FLOAT_EQ(a.dot(b), 12.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t.at2(1, 2) = 9.0f;
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.data()[1 * 6 + 2], 9.0f);
  EXPECT_THROW(t.reshaped({5, 5}), odenet::Error);
}

TEST(Tensor, ShapeStr) {
  Tensor t({1, 2, 3});
  EXPECT_EQ(t.shape_str(), "[1,2,3]");
}

TEST(Tensor, ShapeNumelRejectsNegative) {
  EXPECT_THROW(shape_numel({2, -1}), odenet::Error);
  EXPECT_EQ(shape_numel({2, 0, 3}), 0u);
  EXPECT_EQ(shape_numel({}), 1u);
}

TEST(Tensor, CopySemantics) {
  Tensor a = Tensor::full({2}, 1.0f);
  Tensor b = a;
  b.fill(2.0f);
  EXPECT_FLOAT_EQ(a.at1(0), 1.0f);  // deep copy
  EXPECT_FLOAT_EQ(b.at1(0), 2.0f);
}
