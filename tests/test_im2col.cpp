// im2col/col2im/gemm and the equivalence of Conv2d's two algorithms.
#include <gtest/gtest.h>

#include "core/conv2d.hpp"
#include "core/im2col.hpp"
#include "core/init.hpp"
#include "util/rng.hpp"

using namespace odenet::core;
namespace ou = odenet::util;

namespace {
Tensor random_tensor(std::vector<int> shape, ou::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}
}  // namespace

TEST(Im2col, GeometryFormulas) {
  LoweringGeometry g{.channels = 3, .height = 8, .width = 8};
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.col_rows(), 27u);
  EXPECT_EQ(g.col_cols(), 64u);
  LoweringGeometry s2{.channels = 2, .height = 8, .width = 8, .stride = 2};
  EXPECT_EQ(s2.out_h(), 4);
}

TEST(Im2col, UnfoldsCenterTapExactly) {
  // With k=3, pad=1, stride=1 the center tap row (kh=kw=1) is the image
  // itself.
  LoweringGeometry g{.channels = 1, .height = 3, .width = 3};
  float src[9];
  for (int i = 0; i < 9; ++i) src[i] = static_cast<float>(i + 1);
  std::vector<float> cols(g.col_rows() * g.col_cols());
  im2col(src, g, cols.data());
  const float* center = cols.data() + 4 * g.col_cols();  // row kh=1,kw=1
  for (int i = 0; i < 9; ++i) EXPECT_EQ(center[i], src[i]);
  // Top-left tap at output (0,0) reads the zero padding.
  EXPECT_EQ(cols[0], 0.0f);
  // Top-left tap at output (1,1) reads src(0,0).
  EXPECT_EQ(cols[4], 1.0f);
}

TEST(Im2col, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y.
  ou::Rng rng(2);
  LoweringGeometry g{.channels = 3, .height = 5, .width = 7, .stride = 2};
  std::vector<float> x(static_cast<std::size_t>(3) * 5 * 7);
  for (auto& v : x) v = static_cast<float>(rng.normal(0, 1));
  std::vector<float> y(g.col_rows() * g.col_cols());
  for (auto& v : y) v = static_cast<float>(rng.normal(0, 1));

  std::vector<float> cols(y.size());
  im2col(x.data(), g, cols.data());
  double lhs = 0;
  for (std::size_t i = 0; i < y.size(); ++i) lhs += cols[i] * y[i];

  std::vector<float> back(x.size(), 0.0f);
  col2im(y.data(), g, back.data());
  double rhs = 0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, GemmMatchesNaive) {
  ou::Rng rng(3);
  const int m = 5, k = 7, n = 4;
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.normal(0, 1));
  for (auto& v : b) v = static_cast<float>(rng.normal(0, 1));
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p)
      for (int j = 0; j < n; ++j) ref[i * n + j] += a[i * k + p] * b[p * n + j];
  gemm(a.data(), b.data(), c.data(), m, k, n, false);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  // Accumulation adds on top.
  gemm(a.data(), b.data(), c.data(), m, k, n, true);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], 2 * ref[i], 1e-4f);
}

TEST(Im2col, GemmTransposedVariants) {
  ou::Rng rng(4);
  const int m = 4, k = 6, n = 3;
  std::vector<float> at(k * m), bt(n * k), b(k * n), a(m * k);
  for (auto& v : at) v = static_cast<float>(rng.normal(0, 1));
  for (auto& v : b) v = static_cast<float>(rng.normal(0, 1));
  for (auto& v : a) v = static_cast<float>(rng.normal(0, 1));
  for (auto& v : bt) v = static_cast<float>(rng.normal(0, 1));

  // gemm_at: C = A^T B with A stored [k,m].
  std::vector<float> c1(m * n), ref1(m * n, 0.0f);
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p)
      for (int j = 0; j < n; ++j)
        ref1[i * n + j] += at[p * m + i] * b[p * n + j];
  gemm_at(at.data(), b.data(), c1.data(), m, k, n, false);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(c1[i], ref1[i], 1e-4f);

  // gemm_bt: C = A B^T with B stored [n,k].
  std::vector<float> c2(m * n), ref2(m * n, 0.0f);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j)
      for (int p = 0; p < k; ++p)
        ref2[i * n + j] += a[i * k + p] * bt[j * k + p];
  gemm_bt(a.data(), bt.data(), c2.data(), m, k, n, false);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(c2[i], ref2[i], 1e-4f);
}

struct AlgoCase {
  int n, cin, cout, size, stride;
  bool time_channel;
};

class ConvAlgoEquivalence : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(ConvAlgoEquivalence, ForwardMatchesDirect) {
  const auto p = GetParam();
  ou::Rng rng(5);
  Conv2d direct({.in_channels = p.cin, .out_channels = p.cout,
                 .stride = p.stride, .time_channel = p.time_channel,
                 .algo = ConvAlgo::kDirect});
  init_conv(direct, rng);
  Conv2d lowered({.in_channels = p.cin, .out_channels = p.cout,
                  .stride = p.stride, .time_channel = p.time_channel,
                  .algo = ConvAlgo::kIm2col});
  lowered.weight().value = direct.weight().value;
  direct.set_time(0.7f);
  lowered.set_time(0.7f);

  Tensor x = random_tensor({p.n, p.cin, p.size, p.size}, rng);
  Tensor a = direct.forward(x);
  Tensor b = lowered.forward(x);
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-4f) << "at " << i;
  }
}

TEST_P(ConvAlgoEquivalence, BackwardMatchesDirect) {
  const auto p = GetParam();
  ou::Rng rng(6);
  Conv2d direct({.in_channels = p.cin, .out_channels = p.cout,
                 .stride = p.stride, .time_channel = p.time_channel,
                 .algo = ConvAlgo::kDirect});
  init_conv(direct, rng);
  Conv2d lowered({.in_channels = p.cin, .out_channels = p.cout,
                  .stride = p.stride, .time_channel = p.time_channel,
                  .algo = ConvAlgo::kIm2col});
  lowered.weight().value = direct.weight().value;
  direct.set_training(true);
  lowered.set_training(true);
  direct.set_time(0.3f);
  lowered.set_time(0.3f);

  Tensor x = random_tensor({p.n, p.cin, p.size, p.size}, rng);
  const int ho = Conv2d::out_extent(p.size, 3, p.stride, 1);
  Tensor g = random_tensor({p.n, p.cout, ho, ho}, rng);

  direct.forward(x);
  lowered.forward(x);
  Tensor gin_a = direct.backward(g);
  Tensor gin_b = lowered.backward(g);

  ASSERT_TRUE(gin_a.same_shape(gin_b));
  for (std::size_t i = 0; i < gin_a.numel(); ++i) {
    EXPECT_NEAR(gin_a.data()[i], gin_b.data()[i], 1e-3f) << "gin " << i;
  }
  for (std::size_t i = 0; i < direct.weight().grad.numel(); ++i) {
    EXPECT_NEAR(direct.weight().grad.data()[i],
                lowered.weight().grad.data()[i], 1e-3f)
        << "gw " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvAlgoEquivalence,
    ::testing::Values(AlgoCase{1, 3, 4, 8, 1, false},
                      AlgoCase{2, 4, 4, 6, 1, false},
                      AlgoCase{1, 3, 8, 8, 2, false},
                      AlgoCase{2, 2, 3, 5, 1, true},
                      AlgoCase{1, 4, 4, 8, 1, true}));
