// Gradients through ODESolve: exact discrete backprop vs the adjoint
// method (paper Eq. 9), validated against finite differences and against
// each other — including the large-step divergence that motivates the
// paper's §4.3 instability discussion (ANODE, ref [13]).
#include <gtest/gtest.h>

#include <cmath>

#include "core/block.hpp"
#include "core/init.hpp"
#include "solver/adjoint.hpp"
#include "util/rng.hpp"

using namespace odenet::solver;
using odenet::core::BuildingBlock;
using odenet::core::Tensor;
namespace ou = odenet::util;

namespace {

/// Differentiable analytic dynamics with one scalar parameter:
/// f(z, t) = theta * z^2 (element-wise). df/dz = 2*theta*z, df/dtheta = z^2.
class QuadraticDynamics final : public DifferentiableDynamics {
 public:
  explicit QuadraticDynamics(float theta) : theta_(theta) {}

  Tensor eval(const Tensor& z, float) override {
    cached_z_ = z;
    Tensor out = z;
    out.mul(z);
    out.scale(theta_);
    return out;
  }

  Tensor vjp(const Tensor& v) override {
    // vT df/dtheta = sum(v * z^2); vT df/dz = v * 2*theta*z.
    Tensor z2 = cached_z_;
    z2.mul(cached_z_);
    theta_grad_ += v.dot(z2);
    Tensor gz = v;
    gz.mul(cached_z_);
    gz.scale(2.0f * theta_);
    return gz;
  }

  float theta_ = 0.0f;
  float theta_grad_ = 0.0f;

 private:
  Tensor cached_z_;
};

/// Dynamics adapter over a BuildingBlock's residual branch.
class BlockDyn final : public DifferentiableDynamics {
 public:
  explicit BlockDyn(BuildingBlock& b) : b_(b) {}
  Tensor eval(const Tensor& z, float t) override {
    return b_.branch_forward(z, t);
  }
  Tensor vjp(const Tensor& v) override { return b_.branch_backward(v); }

 private:
  BuildingBlock& b_;
};

Tensor random_tensor(std::vector<int> shape, ou::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return t;
}

float scalar_solve(QuadraticDynamics& f, float z0v, Method m, int steps) {
  Tensor z0({1});
  z0.at1(0) = z0v;
  SolveOptions opts{.method = m, .steps = steps};
  return ode_solve(f, z0, 0.0f, 1.0f, opts).at1(0);
}

}  // namespace

class DiscreteGradMethods : public ::testing::TestWithParam<Method> {};

TEST_P(DiscreteGradMethods, MatchesFiniteDifferenceInZ0) {
  const Method m = GetParam();
  QuadraticDynamics f(0.4f);
  const float z0v = 0.8f;
  const int steps = 4;

  Tensor z0({1});
  z0.at1(0) = z0v;
  Tensor grad_out({1});
  grad_out.at1(0) = 1.0f;  // L = z(t1)
  auto res = discrete_backward(f, z0, grad_out, 0.0f, 1.0f, m, steps);

  const float eps = 1e-3f;
  QuadraticDynamics fp(0.4f), fm(0.4f);
  const float up = scalar_solve(fp, z0v + eps, m, steps);
  const float dn = scalar_solve(fm, z0v - eps, m, steps);
  EXPECT_NEAR(res.grad_z0.at1(0), (up - dn) / (2 * eps), 2e-3f)
      << method_name(m);
}

TEST_P(DiscreteGradMethods, MatchesFiniteDifferenceInTheta) {
  const Method m = GetParam();
  const float theta = 0.3f;
  const int steps = 3;

  QuadraticDynamics f(theta);
  Tensor z0({1});
  z0.at1(0) = 1.1f;
  Tensor grad_out({1});
  grad_out.at1(0) = 1.0f;
  discrete_backward(f, z0, grad_out, 0.0f, 1.0f, m, steps);

  const float eps = 1e-3f;
  QuadraticDynamics fp(theta + eps), fm(theta - eps);
  const float up = scalar_solve(fp, 1.1f, m, steps);
  const float dn = scalar_solve(fm, 1.1f, m, steps);
  EXPECT_NEAR(f.theta_grad_, (up - dn) / (2 * eps), 5e-3f) << method_name(m);
}

INSTANTIATE_TEST_SUITE_P(Methods, DiscreteGradMethods,
                         ::testing::Values(Method::kEuler, Method::kHeun,
                                           Method::kRk4));

TEST(Adjoint, AgreesWithDiscreteForManySmallSteps) {
  // With small h the backward reconstruction is accurate, so the adjoint
  // gradient approaches the exact discrete gradient.
  QuadraticDynamics fa(0.5f), fd(0.5f);
  Tensor z0({1});
  z0.at1(0) = 0.9f;
  const int steps = 64;
  SolveOptions opts{.method = Method::kEuler, .steps = steps};
  Tensor z1 = ode_solve(fa, z0, 0.0f, 1.0f, opts);

  Tensor grad_out({1});
  grad_out.at1(0) = 1.0f;
  auto adj = adjoint_backward(fa, z1, grad_out, 0.0f, 1.0f, steps);
  auto dis = discrete_backward(fd, z0, grad_out, 0.0f, 1.0f, Method::kEuler,
                               steps);
  // Adjoint converges to the discrete gradient at O(h): ~2% at h = 1/64.
  EXPECT_NEAR(adj.grad_z0.at1(0), dis.grad_z0.at1(0),
              0.03f * std::fabs(dis.grad_z0.at1(0)));
  EXPECT_NEAR(fa.theta_grad_, fd.theta_grad_,
              0.03f * std::fabs(fd.theta_grad_));
}

TEST(Adjoint, DivergesFromDiscreteForLargeSteps) {
  // With one huge step the reconstructed z differs from the stored forward
  // z, so adjoint and discrete gradients separate — the instability the
  // paper attributes to the adjoint method at coarse discretizations.
  QuadraticDynamics fa(0.9f), fd(0.9f);
  Tensor z0({1});
  z0.at1(0) = 1.2f;
  const int steps = 1;
  SolveOptions opts{.method = Method::kEuler, .steps = steps};
  Tensor z1 = ode_solve(fa, z0, 0.0f, 1.0f, opts);

  Tensor grad_out({1});
  grad_out.at1(0) = 1.0f;
  auto adj = adjoint_backward(fa, z1, grad_out, 0.0f, 1.0f, steps);
  auto dis = discrete_backward(fd, z0, grad_out, 0.0f, 1.0f, Method::kEuler,
                               steps);
  const float rel = std::fabs(adj.grad_z0.at1(0) - dis.grad_z0.at1(0)) /
                    std::fabs(dis.grad_z0.at1(0));
  EXPECT_GT(rel, 0.05f);  // clearly separated
}

TEST(Adjoint, FunctionEvalCounts) {
  QuadraticDynamics f(0.2f);
  Tensor z0({1});
  z0.at1(0) = 1.0f;
  Tensor g({1});
  g.at1(0) = 1.0f;
  auto adj = adjoint_backward(f, z0, g, 0.0f, 1.0f, 8);
  EXPECT_EQ(adj.function_evals, 8);
  QuadraticDynamics f2(0.2f);
  auto dis = discrete_backward(f2, z0, g, 0.0f, 1.0f, Method::kRk4, 3);
  // Forward checkpointing: 3 steps x 4 evals. Backward per step: 3 stage
  // recomputes (k1..k3) + 4 eval+VJP pairs = 7 evals. Total 12 + 21 = 33.
  EXPECT_EQ(dis.function_evals, 33);
}

TEST(BlockDynamics, DiscreteEulerGradMatchesFiniteDifference) {
  ou::Rng rng(9);
  BuildingBlock block({.in_channels = 2, .out_channels = 2, .stride = 1,
                       .time_channel = true});
  odenet::core::init_block(block, rng);
  block.set_training(true);
  BlockDyn dyn(block);

  Tensor z0 = random_tensor({1, 2, 3, 3}, rng);
  Tensor gout = random_tensor({1, 2, 3, 3}, rng);
  const int steps = 2;

  auto res =
      discrete_backward(dyn, z0, gout, 0.0f, 2.0f, Method::kEuler, steps);

  auto loss = [&](const Tensor& z) {
    SolveOptions opts{.method = Method::kEuler, .steps = steps};
    return ode_solve(dyn, z, 0.0f, 2.0f, opts).dot(gout);
  };
  const float eps = 1e-2f;
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{17}}) {
    Tensor zp = z0;
    zp.data()[i] += eps;
    Tensor zm = z0;
    zm.data()[i] -= eps;
    const float fd = (loss(zp) - loss(zm)) / (2 * eps);
    EXPECT_NEAR(res.grad_z0.data()[i], fd, 0.15f) << "index " << i;
  }
}

TEST(BlockDynamics, ParamGradsAccumulateDuringBackward) {
  ou::Rng rng(10);
  BuildingBlock block({.in_channels = 2, .out_channels = 2, .stride = 1,
                       .time_channel = true});
  odenet::core::init_block(block, rng);
  block.set_training(true);
  BlockDyn dyn(block);

  Tensor z0 = random_tensor({1, 2, 3, 3}, rng);
  Tensor gout = random_tensor({1, 2, 3, 3}, rng);
  block.zero_grads();
  discrete_backward(dyn, z0, gout, 0.0f, 1.0f, Method::kEuler, 2);
  float gmax = 0;
  for (auto* p : block.params()) gmax = std::max(gmax, p->grad.abs_max());
  EXPECT_GT(gmax, 0.0f);
}

TEST(Backward, RejectsInvalidArguments) {
  QuadraticDynamics f(0.1f);
  Tensor z({1}), g({1});
  EXPECT_THROW(adjoint_backward(f, z, g, 0.0f, 1.0f, 0), odenet::Error);
  EXPECT_THROW(
      discrete_backward(f, z, g, 0.0f, 1.0f, Method::kDopri5, 2),
      odenet::Error);
  Tensor bad({2});
  EXPECT_THROW(adjoint_backward(f, z, bad, 0.0f, 1.0f, 1), odenet::Error);
}
