// Cortex-A9 software model: per-block calibration and whole-network totals
// against Table 5's "w/o PL" columns.
#include <gtest/gtest.h>

#include "sched/cpu_model.hpp"

using namespace odenet::sched;
using namespace odenet::models;

TEST(CpuModel, BlockMacsMatchHandCounts) {
  StageSpec layer1{.id = StageId::kLayer1, .stacked_blocks = 1,
                   .executions = 1, .in_channels = 16, .out_channels = 16,
                   .stride = 1, .in_size = 32};
  // 2 x 32*32*16*16*9.
  EXPECT_EQ(CpuModel::block_macs(layer1), 2u * 2359296u);

  StageSpec layer2_1{.id = StageId::kLayer2_1, .stacked_blocks = 1,
                     .executions = 1, .in_channels = 16, .out_channels = 32,
                     .stride = 2, .in_size = 32};
  // 16*16*(32*16*9 + 32*32*9).
  EXPECT_EQ(CpuModel::block_macs(layer2_1), 1179648u + 2359296u);
}

TEST(CpuModel, PerBlockTimesMatchTable5Calibration) {
  CpuModel cpu;
  NetworkSpec spec = make_spec(Arch::kOdeNet, 56);
  // Table 5 "Target w/o PL" / executions: 61.8 / 55.4 / 57.5 ms.
  EXPECT_NEAR(cpu.block_seconds(spec.stage(StageId::kLayer1)) * 1e3, 61.8,
              0.7);
  EXPECT_NEAR(cpu.block_seconds(spec.stage(StageId::kLayer2_2)) * 1e3, 55.4,
              0.6);
  EXPECT_NEAR(cpu.block_seconds(spec.stage(StageId::kLayer3_2)) * 1e3, 57.5,
              0.6);
}

TEST(CpuModel, StemHeadAndTransitionFit) {
  CpuModel cpu;
  WidthConfig w;
  // Fitted split of the ~121 ms residual (DESIGN.md §3.3).
  EXPECT_NEAR(cpu.stem_seconds(w) * 1e3, 5.0, 0.3);
  EXPECT_NEAR(cpu.head_seconds(w) * 1e3, 2.0, 0.1);
  NetworkSpec spec = make_spec(Arch::kResNet, 20);
  EXPECT_NEAR(cpu.block_seconds(spec.stage(StageId::kLayer2_1)) * 1e3, 57.0,
              1.0);
  EXPECT_NEAR(cpu.block_seconds(spec.stage(StageId::kLayer3_1)) * 1e3, 57.0,
              1.0);
}

struct TotalCase {
  Arch arch;
  int n;
  double paper_seconds;
};

class Table5Totals : public ::testing::TestWithParam<TotalCase> {};

TEST_P(Table5Totals, NetworkSecondsWithinSixPercent) {
  const auto p = GetParam();
  CpuModel cpu;
  const double got = cpu.network_seconds(make_spec(p.arch, p.n));
  EXPECT_NEAR(got, p.paper_seconds, p.paper_seconds * 0.06)
      << arch_name(p.arch) << "-" << p.n;
}

INSTANTIATE_TEST_SUITE_P(
    PaperColumn, Table5Totals,
    ::testing::Values(
        TotalCase{Arch::kResNet, 20, 0.54}, TotalCase{Arch::kResNet, 32, 0.89},
        TotalCase{Arch::kResNet, 44, 1.24}, TotalCase{Arch::kResNet, 56, 1.58},
        TotalCase{Arch::kROdeNet1, 20, 0.57},
        TotalCase{Arch::kROdeNet1, 32, 0.94},
        TotalCase{Arch::kROdeNet1, 44, 1.30},
        TotalCase{Arch::kROdeNet1, 56, 1.67},
        TotalCase{Arch::kROdeNet2, 20, 0.52},
        TotalCase{Arch::kROdeNet2, 56, 1.52},
        TotalCase{Arch::kROdeNet12, 20, 0.55},
        TotalCase{Arch::kROdeNet12, 56, 1.60},
        TotalCase{Arch::kROdeNet3, 20, 0.54},
        TotalCase{Arch::kROdeNet3, 32, 0.88},
        TotalCase{Arch::kROdeNet3, 44, 1.23},
        TotalCase{Arch::kROdeNet3, 56, 1.57},
        TotalCase{Arch::kOdeNet, 20, 0.56},
        TotalCase{Arch::kOdeNet, 56, 1.60},
        TotalCase{Arch::kHybrid3, 20, 0.53},
        TotalCase{Arch::kHybrid3, 56, 1.56}));

TEST(CpuModel, ScalesLinearlyWithClock) {
  // The MAC-bound part halves when the clock doubles (the fixed fc
  // overhead term is excluded from both configs).
  CpuModelConfig fast, base;
  fast.clock_mhz = 1300.0;  // 2x the A9
  fast.fc_base_seconds = 0.0;
  base.fc_base_seconds = 0.0;
  CpuModel cpu_fast(fast), cpu_base(base);
  NetworkSpec spec = make_spec(Arch::kResNet, 20);
  EXPECT_NEAR(cpu_fast.network_seconds(spec) * 2.0,
              cpu_base.network_seconds(spec), 1e-6);
}

TEST(CpuModel, SmallerWidthIsFaster) {
  CpuModel cpu;
  WidthConfig small{.input_channels = 3, .input_size = 16, .base_channels = 8,
                    .num_classes = 10};
  EXPECT_LT(cpu.network_seconds(make_spec(Arch::kResNet, 20, small)),
            cpu.network_seconds(make_spec(Arch::kResNet, 20)));
}

TEST(CpuModel, RejectsBadClock) {
  CpuModelConfig cfg;
  cfg.clock_mhz = 0.0;
  EXPECT_THROW(CpuModel{cfg}, odenet::Error);
}
