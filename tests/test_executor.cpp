// StageExecutor backends and StagePlan routing (models/executor.hpp,
// sched/fpga_executor.hpp): backend parity within quantization tolerance,
// single dispatch loop, per-stage stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "models/executor.hpp"
#include "models/network.hpp"
#include "sched/fpga_executor.hpp"
#include "sched/latency_model.hpp"
#include "util/rng.hpp"

using namespace odenet;
using models::Arch;
using models::StageId;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

core::Tensor random_input(int batch, util::Rng& rng) {
  core::Tensor x({batch, 3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return x;
}

double max_abs_diff(const core::Tensor& a, const core::Tensor& b) {
  double diff = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(a.data()[i]) -
                                    b.data()[i]));
  }
  return diff;
}

}  // namespace

TEST(Executor, ExplicitFloatPlanMatchesDefaultForward) {
  util::Rng rng(1);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(2, rng);

  core::Tensor base = net.forward(x);
  models::FloatStageExecutor float_exec;
  models::StagePlan plan(&float_exec);
  core::Tensor routed = net.forward_with(x, plan);

  ASSERT_TRUE(base.same_shape(routed));
  for (std::size_t i = 0; i < base.numel(); ++i) {
    EXPECT_FLOAT_EQ(base.data()[i], routed.data()[i]);
  }
}

TEST(Executor, FixedBackendWithinQuantizationTolerance) {
  util::Rng rng(2);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(1, rng);

  core::Tensor base = net.forward(x);

  // Float-carrier comparator keeps the PR 6 precision: Q11.20 activations,
  // per-element error ~1e-6, a handful of steps deep.
  models::FixedStageExecutor q20f(20, models::FixedConvPath::kBatchedFloat);
  models::StagePlan plan_f(&q20f);
  core::Tensor carrier_out = net.forward_with(x, plan_f);
  ASSERT_TRUE(base.same_shape(carrier_out));
  EXPECT_LT(max_abs_diff(base, carrier_out), 1e-3);

  // The default integer path carries int16 operands: weights on a Q(<=13)
  // grid (step >= 1.2e-4) and activations on the finest saturation-free
  // grid, so per-conv noise is ~sqrt(taps) * step / 2 and the 28-conv-deep
  // ODE sweep accumulates a few 1e-2 — budget 0.1 (~4x measured).
  models::FixedStageExecutor q20(20);
  models::StagePlan plan(&q20);
  core::Tensor fixed_out = net.forward_with(x, plan);
  ASSERT_TRUE(base.same_shape(fixed_out));
  EXPECT_LT(max_abs_diff(base, fixed_out), 0.1);
  // The int16 path's extra error over the float carrier is bounded by the
  // same operand-grid budget — they run the same quantized network.
  EXPECT_LT(max_abs_diff(carrier_out, fixed_out), 0.1);

  // A much narrower format must sit strictly farther from the reference.
  // The ordering is guaranteed on the float carrier, where the Q(frac)
  // output grid is the ONLY noise source; on the int16 path the operand
  // grids (fw <= 13) dominate at fine frac_bits, so q8-vs-q20 ordering is
  // checked there only in the ballpark sense.
  models::FixedStageExecutor q8f(8, models::FixedConvPath::kBatchedFloat);
  models::StagePlan coarse_f(&q8f);
  core::Tensor coarse_carrier = net.forward_with(x, coarse_f);
  EXPECT_GT(max_abs_diff(base, coarse_carrier),
            max_abs_diff(base, carrier_out));
  models::FixedStageExecutor q8(8);
  models::StagePlan coarse(&q8);
  core::Tensor coarse_out = net.forward_with(x, coarse);
  EXPECT_LT(max_abs_diff(base, coarse_out), 1.0);
}

TEST(Executor, FpgaSimBackendMatchesFloatWithinTolerance) {
  util::Rng rng(3);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);

  // Constructing the executor aligns the stage's BN semantics with the
  // hardware (per-batch statistics), so take the float reference after.
  sched::FpgaStageExecutor fpga(*net.stage(StageId::kLayer3_2),
                                sched::FpgaStageExecutor::Config{});
  net.set_training(false);
  core::Tensor x = random_input(1, rng);
  core::Tensor base = net.forward(x);

  models::StagePlan plan;  // float fallback, PL for layer3_2
  plan.assign(StageId::kLayer3_2, &fpga);
  core::Tensor hybrid = net.forward_with(x, plan);

  ASSERT_TRUE(base.same_shape(hybrid));
  EXPECT_LT(max_abs_diff(base, hybrid), 0.15);
}

TEST(Executor, RunStatsCoverEveryStageAndFoldPlCycles) {
  util::Rng rng(4);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  sched::FpgaStageExecutor fpga(*net.stage(StageId::kLayer3_2),
                                sched::FpgaStageExecutor::Config{
                                    .parallelism = 8});
  net.set_training(false);

  models::StagePlan plan;
  plan.assign(StageId::kLayer3_2, &fpga);
  models::NetworkRunStats stats;
  const int batch = 3;
  net.forward_with(random_input(batch, rng), plan, &stats);

  // layer1, layer2_1, layer3_1, layer3_2 (layer2_2 removed in rODENet-3).
  ASSERT_EQ(stats.stages.size(), 4u);
  int on_pl = 0;
  for (const auto& run : stats.stages) {
    if (run.id == StageId::kLayer3_2) {
      EXPECT_EQ(run.stats.backend, core::ExecBackend::kFpgaSim);
      EXPECT_TRUE(run.stats.on_accelerator);
      EXPECT_GT(run.stats.pl_cycles, 0u);
      ++on_pl;
    } else {
      EXPECT_EQ(run.stats.backend, core::ExecBackend::kFloat);
      EXPECT_FALSE(run.stats.on_accelerator);
      EXPECT_EQ(run.stats.pl_cycles, 0u);
    }
  }
  EXPECT_EQ(on_pl, 1);

  // The folded cycle count matches the static latency model, execution for
  // execution (same invariant the co-simulator test checks).
  const auto& spec = net.stage(StageId::kLayer3_2)->spec();
  const std::uint64_t per_exec = sched::LatencyModel::pl_block_cycles(spec, 8);
  const std::size_t fwords = static_cast<std::size_t>(spec.out_channels) *
                             spec.in_size * spec.in_size;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(batch) * spec.executions *
      (per_exec + fpga::roundtrip_cycles(fwords, fwords));
  EXPECT_EQ(stats.pl_cycles(), expected);
}

TEST(Executor, BackendsAgreeOnBatchedInputAcrossConvAlgos) {
  // Regression guard for the batched conv rewrite: on one multi-sample
  // input, (a) the float plan is invariant to the conv algorithm (batched
  // im2col vs per-sample vs direct — a layout bug in the batched lowering
  // would show up here even if single-sample unit tests pass), and (b) the
  // fixed and FPGA-sim plans still agree with the float plan within their
  // established tolerances.
  util::Rng rng(6);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);

  sched::FpgaStageExecutor fpga(*net.stage(StageId::kLayer3_2),
                                sched::FpgaStageExecutor::Config{});
  net.set_training(false);
  core::Tensor x = random_input(6, rng);

  models::FloatStageExecutor float_exec;
  models::StagePlan float_plan(&float_exec);
  core::Tensor batched = net.forward_with(x, float_plan);

  net.set_conv_algo(core::ConvAlgo::kIm2colPerSample);
  core::Tensor per_sample = net.forward_with(x, float_plan);
  ASSERT_TRUE(batched.same_shape(per_sample));
  EXPECT_LT(max_abs_diff(batched, per_sample), 1e-4);

  net.set_conv_algo(core::ConvAlgo::kDirect);
  core::Tensor direct = net.forward_with(x, float_plan);
  EXPECT_LT(max_abs_diff(batched, direct), 1e-4);

  net.set_conv_algo(core::ConvAlgo::kIm2col);
  models::FixedStageExecutor q20f(20, models::FixedConvPath::kBatchedFloat);
  models::StagePlan carrier_plan(&q20f);
  core::Tensor carrier_out = net.forward_with(x, carrier_plan);
  EXPECT_LT(max_abs_diff(batched, carrier_out), 1e-3);
  // The int16 integer path trades operand width for speed; its budget is
  // the int16-grid bound (see FixedBackendWithinQuantizationTolerance).
  models::FixedStageExecutor q20(20);
  models::StagePlan fixed_plan(&q20);
  core::Tensor fixed_out = net.forward_with(x, fixed_plan);
  EXPECT_LT(max_abs_diff(batched, fixed_out), 0.1);

  // The accelerator normalizes per image, so its batch output is not
  // comparable to float batch statistics — the invariant to guard instead
  // is batching-invariance: the hybrid plan must give each image of the
  // micro-batch exactly what it gives that image served alone (a layout
  // bug in the batched conv of the non-offloaded stages would break
  // this).
  models::StagePlan hybrid_plan;  // float fallback, PL for layer3_2
  hybrid_plan.assign(StageId::kLayer3_2, &fpga);
  core::Tensor hybrid = net.forward_with(x, hybrid_plan);
  const int classes = hybrid.dim(1);
  const std::size_t stride = static_cast<std::size_t>(3) * 16 * 16;
  for (int i : {0, 2, 5}) {
    core::Tensor one({1, 3, 16, 16});
    std::copy_n(x.data() + static_cast<std::size_t>(i) * stride, stride,
                one.data());
    core::Tensor single = net.forward_with(one, hybrid_plan);
    for (int c = 0; c < classes; ++c) {
      EXPECT_NEAR(hybrid.at2(i, c), single.at2(0, c), 1e-4)
          << "image " << i << " class " << c;
    }
  }
}

TEST(Executor, SharedNetworkArenaStopsGrowingAcrossForwardPasses) {
  // The network-owned scratch arena serves every conv of every stage;
  // after one routed pass it is at its high-water mark and further passes
  // (same batch size) never reallocate.
  util::Rng rng(7);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);

  models::FloatStageExecutor float_exec;
  models::StagePlan plan(&float_exec);
  core::Tensor x = random_input(4, rng);
  (void)net.forward_with(x, plan);
  const std::size_t capacity = net.scratch_arena().capacity();
  const std::uint64_t growths = net.scratch_arena().growths();
  EXPECT_GT(capacity, 0u);
  for (int i = 0; i < 3; ++i) (void)net.forward_with(x, plan);
  EXPECT_EQ(net.scratch_arena().capacity(), capacity);
  EXPECT_EQ(net.scratch_arena().growths(), growths);
}

TEST(Executor, ModeledCostHookReplacesMeasuredSeconds) {
  util::Rng rng(5);
  models::Network net(models::make_spec(Arch::kResNet, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);

  models::FloatStageExecutor modeled(
      [](const models::StageSpec&) { return 42.0; });
  models::StagePlan plan(&modeled);
  models::NetworkRunStats stats;
  net.forward_with(random_input(1, rng), plan, &stats);
  ASSERT_FALSE(stats.stages.empty());
  for (const auto& run : stats.stages) {
    EXPECT_DOUBLE_EQ(run.stats.seconds, 42.0);
  }
  EXPECT_DOUBLE_EQ(stats.stage_seconds(), 42.0 * stats.stages.size());
}

TEST(Executor, FixedBatchedMatchesPerSampleLowering) {
  // The batched FLOAT-CARRIER fixed conv (whole-batch im2col + one packed
  // GEMM) against the per-sample comparator: same quantized weights, same
  // requantization points, only the lowering and the float summation
  // order differ — so outputs agree to well under the Q20 parity budget.
  util::Rng rng(41);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(4, rng);

  models::FixedStageExecutor batched_f(20,
                                       models::FixedConvPath::kBatchedFloat);
  models::FixedStageExecutor per_sample(20,
                                        models::FixedConvPath::kPerSample);
  EXPECT_EQ(batched_f.conv_path(), models::FixedConvPath::kBatchedFloat);
  EXPECT_EQ(per_sample.conv_path(), models::FixedConvPath::kPerSample);

  models::StagePlan plan_f(&batched_f);
  models::StagePlan plan_p(&per_sample);
  core::Tensor out_f = net.forward_with(x, plan_f);
  core::Tensor out_p = net.forward_with(x, plan_p);

  ASSERT_TRUE(out_f.same_shape(out_p));
  EXPECT_LT(max_abs_diff(out_f, out_p), 1e-3);

  // And both still sit within quantization tolerance of float.
  core::Tensor base = net.forward(x);
  EXPECT_LT(max_abs_diff(base, out_f), 1e-3);
  EXPECT_LT(max_abs_diff(base, out_p), 1e-3);

  // The default int16 integer path runs the same quantized network on
  // narrower operand grids — it agrees within the int16 budget (see
  // FixedBackendWithinQuantizationTolerance) with both comparators.
  models::FixedStageExecutor batched_i(20, models::FixedConvPath::kBatched);
  EXPECT_EQ(batched_i.conv_path(), models::FixedConvPath::kBatched);
  models::StagePlan plan_i(&batched_i);
  core::Tensor out_i = net.forward_with(x, plan_i);
  EXPECT_LT(max_abs_diff(out_i, out_f), 0.1);
  EXPECT_LT(max_abs_diff(base, out_i), 0.1);
}

TEST(Executor, FixedWeightCacheKeyedBySnapshotVersion) {
  util::Rng rng(42);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(1, rng);
  models::FixedStageExecutor fixed(20);
  models::StagePlan plan(&fixed);

  // Unversioned weights: every conv evaluation requantizes + repacks.
  (void)net.forward_with(x, plan);
  const std::uint64_t packs_cold = fixed.weight_packs();
  EXPECT_GT(packs_cold, 0u);
  (void)net.forward_with(x, plan);
  EXPECT_GT(fixed.weight_packs(), packs_cold);

  // Versioned weights (serving steady state): one pack per conv, then
  // hits — repeat runs add nothing.
  net.apply_snapshot(*net.export_snapshot());
  (void)net.forward_with(x, plan);
  const std::uint64_t packs_warm = fixed.weight_packs();
  (void)net.forward_with(x, plan);
  (void)net.forward_with(x, plan);
  EXPECT_EQ(fixed.weight_packs(), packs_warm);

  // Hot-swap to a new version: exactly one round of repacks.
  net.apply_snapshot(*net.export_snapshot());
  (void)net.forward_with(x, plan);
  EXPECT_GT(fixed.weight_packs(), packs_warm);
}

TEST(Executor, WeightCacheSurvivesReplicaChurnWithoutAliasing) {
  // Regression: the cache used to be keyed by raw Conv2d*, so a replica
  // torn down and a new one allocated at a recycled address — with a
  // matching weight version — would silently serve the OLD replica's
  // quantized weights. Keys are now Conv2d::uid(), a process-global
  // never-recycled identity, so every fresh network quantizes its own
  // weights and stale entries age out of the LRU instead of aliasing.
  util::Rng rng(43);
  models::FixedStageExecutor fixed(20);
  models::StagePlan plan(&fixed);
  core::Tensor x = random_input(1, rng);

  core::Tensor first_out;
  for (int round = 0; round < 4; ++round) {
    // Same seed every round: identical weights, and the version stamp is
    // forced to the SAME value — exactly the aliasing trap. Heap reuse
    // across rounds makes recycled addresses likely.
    util::Rng net_rng(99);
    auto net = std::make_unique<models::Network>(
        models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
    net->init(net_rng);
    net->set_training(false);
    net->set_weight_version(7);

    const std::uint64_t packs_before = fixed.weight_packs();
    core::Tensor out = net->forward_with(x, plan);
    // A fresh replica must repack: a cache hit here could only come from
    // a stale aliased entry.
    EXPECT_GT(fixed.weight_packs(), packs_before) << "round " << round;
    if (round == 0) {
      first_out = std::move(out);
    } else {
      ASSERT_TRUE(first_out.same_shape(out));
      for (std::size_t i = 0; i < out.numel(); ++i) {
        ASSERT_EQ(first_out.data()[i], out.data()[i]) << "round " << round;
      }
    }
  }
  // Dead replicas' entries are retained only up to the LRU cap.
  EXPECT_LE(fixed.weight_cache_size(), std::size_t{256});
}

TEST(Executor, WeightCacheCapacityBoundsChurn) {
  // With a tiny capacity, many short-lived replicas cannot grow the cache
  // beyond the cap (the pointer-keyed map used to grow without bound —
  // one leaked entry per dead conv).
  util::Rng rng(44);
  models::FixedStageExecutor fixed(20);
  fixed.set_weight_cache_capacity(3);
  models::StagePlan plan(&fixed);
  core::Tensor x = random_input(1, rng);

  for (int round = 0; round < 5; ++round) {
    util::Rng net_rng(100 + round);
    models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
    net.init(net_rng);
    net.set_training(false);
    net.set_weight_version(1);
    (void)net.forward_with(x, plan);
    EXPECT_LE(fixed.weight_cache_size(), std::size_t{3}) << "round " << round;
  }
}
