// StageExecutor backends and StagePlan routing (models/executor.hpp,
// sched/fpga_executor.hpp): backend parity within quantization tolerance,
// single dispatch loop, per-stage stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "models/executor.hpp"
#include "models/network.hpp"
#include "sched/fpga_executor.hpp"
#include "sched/latency_model.hpp"
#include "util/rng.hpp"

using namespace odenet;
using models::Arch;
using models::StageId;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

core::Tensor random_input(int batch, util::Rng& rng) {
  core::Tensor x({batch, 3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return x;
}

double max_abs_diff(const core::Tensor& a, const core::Tensor& b) {
  double diff = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(a.data()[i]) -
                                    b.data()[i]));
  }
  return diff;
}

}  // namespace

TEST(Executor, ExplicitFloatPlanMatchesDefaultForward) {
  util::Rng rng(1);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(2, rng);

  core::Tensor base = net.forward(x);
  models::FloatStageExecutor float_exec;
  models::StagePlan plan(&float_exec);
  core::Tensor routed = net.forward_with(x, plan);

  ASSERT_TRUE(base.same_shape(routed));
  for (std::size_t i = 0; i < base.numel(); ++i) {
    EXPECT_FLOAT_EQ(base.data()[i], routed.data()[i]);
  }
}

TEST(Executor, FixedBackendWithinQuantizationTolerance) {
  util::Rng rng(2);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(1, rng);

  core::Tensor base = net.forward(x);
  models::FixedStageExecutor q20(20);
  models::StagePlan plan(&q20);
  core::Tensor fixed_out = net.forward_with(x, plan);

  ASSERT_TRUE(base.same_shape(fixed_out));
  // Q11.20 activations: per-element error ~1e-6, a handful of steps deep.
  EXPECT_LT(max_abs_diff(base, fixed_out), 1e-3);

  // A much narrower format must sit strictly farther from the reference
  // (and still in the same ballpark — sanity that it ran the same math).
  models::FixedStageExecutor q8(8);
  models::StagePlan coarse(&q8);
  core::Tensor coarse_out = net.forward_with(x, coarse);
  EXPECT_GT(max_abs_diff(base, coarse_out),
            max_abs_diff(base, fixed_out));
  EXPECT_LT(max_abs_diff(base, coarse_out), 1.0);
}

TEST(Executor, FpgaSimBackendMatchesFloatWithinTolerance) {
  util::Rng rng(3);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);

  // Constructing the executor aligns the stage's BN semantics with the
  // hardware (per-batch statistics), so take the float reference after.
  sched::FpgaStageExecutor fpga(*net.stage(StageId::kLayer3_2),
                                sched::FpgaStageExecutor::Config{});
  net.set_training(false);
  core::Tensor x = random_input(1, rng);
  core::Tensor base = net.forward(x);

  models::StagePlan plan;  // float fallback, PL for layer3_2
  plan.assign(StageId::kLayer3_2, &fpga);
  core::Tensor hybrid = net.forward_with(x, plan);

  ASSERT_TRUE(base.same_shape(hybrid));
  EXPECT_LT(max_abs_diff(base, hybrid), 0.15);
}

TEST(Executor, RunStatsCoverEveryStageAndFoldPlCycles) {
  util::Rng rng(4);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  sched::FpgaStageExecutor fpga(*net.stage(StageId::kLayer3_2),
                                sched::FpgaStageExecutor::Config{
                                    .parallelism = 8});
  net.set_training(false);

  models::StagePlan plan;
  plan.assign(StageId::kLayer3_2, &fpga);
  models::NetworkRunStats stats;
  const int batch = 3;
  net.forward_with(random_input(batch, rng), plan, &stats);

  // layer1, layer2_1, layer3_1, layer3_2 (layer2_2 removed in rODENet-3).
  ASSERT_EQ(stats.stages.size(), 4u);
  int on_pl = 0;
  for (const auto& run : stats.stages) {
    if (run.id == StageId::kLayer3_2) {
      EXPECT_EQ(run.stats.backend, core::ExecBackend::kFpgaSim);
      EXPECT_TRUE(run.stats.on_accelerator);
      EXPECT_GT(run.stats.pl_cycles, 0u);
      ++on_pl;
    } else {
      EXPECT_EQ(run.stats.backend, core::ExecBackend::kFloat);
      EXPECT_FALSE(run.stats.on_accelerator);
      EXPECT_EQ(run.stats.pl_cycles, 0u);
    }
  }
  EXPECT_EQ(on_pl, 1);

  // The folded cycle count matches the static latency model, execution for
  // execution (same invariant the co-simulator test checks).
  const auto& spec = net.stage(StageId::kLayer3_2)->spec();
  const std::uint64_t per_exec = sched::LatencyModel::pl_block_cycles(spec, 8);
  const std::size_t fwords = static_cast<std::size_t>(spec.out_channels) *
                             spec.in_size * spec.in_size;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(batch) * spec.executions *
      (per_exec + fpga::roundtrip_cycles(fwords, fwords));
  EXPECT_EQ(stats.pl_cycles(), expected);
}

TEST(Executor, BackendsAgreeOnBatchedInputAcrossConvAlgos) {
  // Regression guard for the batched conv rewrite: on one multi-sample
  // input, (a) the float plan is invariant to the conv algorithm (batched
  // im2col vs per-sample vs direct — a layout bug in the batched lowering
  // would show up here even if single-sample unit tests pass), and (b) the
  // fixed and FPGA-sim plans still agree with the float plan within their
  // established tolerances.
  util::Rng rng(6);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);

  sched::FpgaStageExecutor fpga(*net.stage(StageId::kLayer3_2),
                                sched::FpgaStageExecutor::Config{});
  net.set_training(false);
  core::Tensor x = random_input(6, rng);

  models::FloatStageExecutor float_exec;
  models::StagePlan float_plan(&float_exec);
  core::Tensor batched = net.forward_with(x, float_plan);

  net.set_conv_algo(core::ConvAlgo::kIm2colPerSample);
  core::Tensor per_sample = net.forward_with(x, float_plan);
  ASSERT_TRUE(batched.same_shape(per_sample));
  EXPECT_LT(max_abs_diff(batched, per_sample), 1e-4);

  net.set_conv_algo(core::ConvAlgo::kDirect);
  core::Tensor direct = net.forward_with(x, float_plan);
  EXPECT_LT(max_abs_diff(batched, direct), 1e-4);

  net.set_conv_algo(core::ConvAlgo::kIm2col);
  models::FixedStageExecutor q20(20);
  models::StagePlan fixed_plan(&q20);
  core::Tensor fixed_out = net.forward_with(x, fixed_plan);
  EXPECT_LT(max_abs_diff(batched, fixed_out), 1e-3);

  // The accelerator normalizes per image, so its batch output is not
  // comparable to float batch statistics — the invariant to guard instead
  // is batching-invariance: the hybrid plan must give each image of the
  // micro-batch exactly what it gives that image served alone (a layout
  // bug in the batched conv of the non-offloaded stages would break
  // this).
  models::StagePlan hybrid_plan;  // float fallback, PL for layer3_2
  hybrid_plan.assign(StageId::kLayer3_2, &fpga);
  core::Tensor hybrid = net.forward_with(x, hybrid_plan);
  const int classes = hybrid.dim(1);
  const std::size_t stride = static_cast<std::size_t>(3) * 16 * 16;
  for (int i : {0, 2, 5}) {
    core::Tensor one({1, 3, 16, 16});
    std::copy_n(x.data() + static_cast<std::size_t>(i) * stride, stride,
                one.data());
    core::Tensor single = net.forward_with(one, hybrid_plan);
    for (int c = 0; c < classes; ++c) {
      EXPECT_NEAR(hybrid.at2(i, c), single.at2(0, c), 1e-4)
          << "image " << i << " class " << c;
    }
  }
}

TEST(Executor, SharedNetworkArenaStopsGrowingAcrossForwardPasses) {
  // The network-owned scratch arena serves every conv of every stage;
  // after one routed pass it is at its high-water mark and further passes
  // (same batch size) never reallocate.
  util::Rng rng(7);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);

  models::FloatStageExecutor float_exec;
  models::StagePlan plan(&float_exec);
  core::Tensor x = random_input(4, rng);
  (void)net.forward_with(x, plan);
  const std::size_t capacity = net.scratch_arena().capacity();
  const std::uint64_t growths = net.scratch_arena().growths();
  EXPECT_GT(capacity, 0u);
  for (int i = 0; i < 3; ++i) (void)net.forward_with(x, plan);
  EXPECT_EQ(net.scratch_arena().capacity(), capacity);
  EXPECT_EQ(net.scratch_arena().growths(), growths);
}

TEST(Executor, ModeledCostHookReplacesMeasuredSeconds) {
  util::Rng rng(5);
  models::Network net(models::make_spec(Arch::kResNet, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);

  models::FloatStageExecutor modeled(
      [](const models::StageSpec&) { return 42.0; });
  models::StagePlan plan(&modeled);
  models::NetworkRunStats stats;
  net.forward_with(random_input(1, rng), plan, &stats);
  ASSERT_FALSE(stats.stages.empty());
  for (const auto& run : stats.stages) {
    EXPECT_DOUBLE_EQ(run.stats.seconds, 42.0);
  }
  EXPECT_DOUBLE_EQ(stats.stage_seconds(), 42.0 * stats.stages.size());
}

TEST(Executor, FixedBatchedMatchesPerSampleLowering) {
  // The batched fixed conv (whole-batch im2col + one packed GEMM) against
  // the per-sample comparator: same quantized weights, same requantization
  // points, only the lowering and the float summation order differ — so
  // outputs agree to well under the Q20 parity budget.
  util::Rng rng(41);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(4, rng);

  models::FixedStageExecutor batched(20, models::FixedConvPath::kBatched);
  models::FixedStageExecutor per_sample(20,
                                        models::FixedConvPath::kPerSample);
  EXPECT_EQ(batched.conv_path(), models::FixedConvPath::kBatched);
  EXPECT_EQ(per_sample.conv_path(), models::FixedConvPath::kPerSample);

  models::StagePlan plan_b(&batched);
  models::StagePlan plan_p(&per_sample);
  core::Tensor out_b = net.forward_with(x, plan_b);
  core::Tensor out_p = net.forward_with(x, plan_p);

  ASSERT_TRUE(out_b.same_shape(out_p));
  EXPECT_LT(max_abs_diff(out_b, out_p), 1e-3);

  // And both still sit within quantization tolerance of float.
  core::Tensor base = net.forward(x);
  EXPECT_LT(max_abs_diff(base, out_b), 1e-3);
  EXPECT_LT(max_abs_diff(base, out_p), 1e-3);
}

TEST(Executor, FixedWeightCacheKeyedBySnapshotVersion) {
  util::Rng rng(42);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(1, rng);
  models::FixedStageExecutor fixed(20);
  models::StagePlan plan(&fixed);

  // Unversioned weights: every conv evaluation requantizes + repacks.
  (void)net.forward_with(x, plan);
  const std::uint64_t packs_cold = fixed.weight_packs();
  EXPECT_GT(packs_cold, 0u);
  (void)net.forward_with(x, plan);
  EXPECT_GT(fixed.weight_packs(), packs_cold);

  // Versioned weights (serving steady state): one pack per conv, then
  // hits — repeat runs add nothing.
  net.apply_snapshot(*net.export_snapshot());
  (void)net.forward_with(x, plan);
  const std::uint64_t packs_warm = fixed.weight_packs();
  (void)net.forward_with(x, plan);
  (void)net.forward_with(x, plan);
  EXPECT_EQ(fixed.weight_packs(), packs_warm);

  // Hot-swap to a new version: exactly one round of repacks.
  net.apply_snapshot(*net.export_snapshot());
  (void)net.forward_with(x, plan);
  EXPECT_GT(fixed.weight_packs(), packs_warm);
}
