// StageExecutor backends and StagePlan routing (models/executor.hpp,
// sched/fpga_executor.hpp): backend parity within quantization tolerance,
// single dispatch loop, per-stage stats.
#include <gtest/gtest.h>

#include <cmath>

#include "models/executor.hpp"
#include "models/network.hpp"
#include "sched/fpga_executor.hpp"
#include "sched/latency_model.hpp"
#include "util/rng.hpp"

using namespace odenet;
using models::Arch;
using models::StageId;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

core::Tensor random_input(int batch, util::Rng& rng) {
  core::Tensor x({batch, 3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return x;
}

double max_abs_diff(const core::Tensor& a, const core::Tensor& b) {
  double diff = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    diff = std::max(diff, std::fabs(static_cast<double>(a.data()[i]) -
                                    b.data()[i]));
  }
  return diff;
}

}  // namespace

TEST(Executor, ExplicitFloatPlanMatchesDefaultForward) {
  util::Rng rng(1);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(2, rng);

  core::Tensor base = net.forward(x);
  models::FloatStageExecutor float_exec;
  models::StagePlan plan(&float_exec);
  core::Tensor routed = net.forward_with(x, plan);

  ASSERT_TRUE(base.same_shape(routed));
  for (std::size_t i = 0; i < base.numel(); ++i) {
    EXPECT_FLOAT_EQ(base.data()[i], routed.data()[i]);
  }
}

TEST(Executor, FixedBackendWithinQuantizationTolerance) {
  util::Rng rng(2);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);
  core::Tensor x = random_input(1, rng);

  core::Tensor base = net.forward(x);
  models::FixedStageExecutor q20(20);
  models::StagePlan plan(&q20);
  core::Tensor fixed_out = net.forward_with(x, plan);

  ASSERT_TRUE(base.same_shape(fixed_out));
  // Q11.20 activations: per-element error ~1e-6, a handful of steps deep.
  EXPECT_LT(max_abs_diff(base, fixed_out), 1e-3);

  // A much narrower format must sit strictly farther from the reference
  // (and still in the same ballpark — sanity that it ran the same math).
  models::FixedStageExecutor q8(8);
  models::StagePlan coarse(&q8);
  core::Tensor coarse_out = net.forward_with(x, coarse);
  EXPECT_GT(max_abs_diff(base, coarse_out),
            max_abs_diff(base, fixed_out));
  EXPECT_LT(max_abs_diff(base, coarse_out), 1.0);
}

TEST(Executor, FpgaSimBackendMatchesFloatWithinTolerance) {
  util::Rng rng(3);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);

  // Constructing the executor aligns the stage's BN semantics with the
  // hardware (per-batch statistics), so take the float reference after.
  sched::FpgaStageExecutor fpga(*net.stage(StageId::kLayer3_2),
                                sched::FpgaStageExecutor::Config{});
  net.set_training(false);
  core::Tensor x = random_input(1, rng);
  core::Tensor base = net.forward(x);

  models::StagePlan plan;  // float fallback, PL for layer3_2
  plan.assign(StageId::kLayer3_2, &fpga);
  core::Tensor hybrid = net.forward_with(x, plan);

  ASSERT_TRUE(base.same_shape(hybrid));
  EXPECT_LT(max_abs_diff(base, hybrid), 0.15);
}

TEST(Executor, RunStatsCoverEveryStageAndFoldPlCycles) {
  util::Rng rng(4);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  sched::FpgaStageExecutor fpga(*net.stage(StageId::kLayer3_2),
                                sched::FpgaStageExecutor::Config{
                                    .parallelism = 8});
  net.set_training(false);

  models::StagePlan plan;
  plan.assign(StageId::kLayer3_2, &fpga);
  models::NetworkRunStats stats;
  const int batch = 3;
  net.forward_with(random_input(batch, rng), plan, &stats);

  // layer1, layer2_1, layer3_1, layer3_2 (layer2_2 removed in rODENet-3).
  ASSERT_EQ(stats.stages.size(), 4u);
  int on_pl = 0;
  for (const auto& run : stats.stages) {
    if (run.id == StageId::kLayer3_2) {
      EXPECT_EQ(run.stats.backend, core::ExecBackend::kFpgaSim);
      EXPECT_TRUE(run.stats.on_accelerator);
      EXPECT_GT(run.stats.pl_cycles, 0u);
      ++on_pl;
    } else {
      EXPECT_EQ(run.stats.backend, core::ExecBackend::kFloat);
      EXPECT_FALSE(run.stats.on_accelerator);
      EXPECT_EQ(run.stats.pl_cycles, 0u);
    }
  }
  EXPECT_EQ(on_pl, 1);

  // The folded cycle count matches the static latency model, execution for
  // execution (same invariant the co-simulator test checks).
  const auto& spec = net.stage(StageId::kLayer3_2)->spec();
  const std::uint64_t per_exec = sched::LatencyModel::pl_block_cycles(spec, 8);
  const std::size_t fwords = static_cast<std::size_t>(spec.out_channels) *
                             spec.in_size * spec.in_size;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(batch) * spec.executions *
      (per_exec + fpga::roundtrip_cycles(fwords, fwords));
  EXPECT_EQ(stats.pl_cycles(), expected);
}

TEST(Executor, ModeledCostHookReplacesMeasuredSeconds) {
  util::Rng rng(5);
  models::Network net(models::make_spec(Arch::kResNet, 14, tiny_width()));
  net.init(rng);
  net.set_training(false);

  models::FloatStageExecutor modeled(
      [](const models::StageSpec&) { return 42.0; });
  models::StagePlan plan(&modeled);
  models::NetworkRunStats stats;
  net.forward_with(random_input(1, rng), plan, &stats);
  ASSERT_FALSE(stats.stages.empty());
  for (const auto& run : stats.stages) {
    EXPECT_DOUBLE_EQ(run.stats.seconds, 42.0);
  }
  EXPECT_DOUBLE_EQ(stats.stage_seconds(), 42.0 * stats.stages.size());
}
