// Edge cases and failure injection across modules.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/init.hpp"
#include "data/cifar.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "fpga/bn_engine.hpp"
#include "models/network.hpp"
#include "sched/explorer.hpp"
#include "util/rng.hpp"

using namespace odenet;
namespace ou = odenet::util;

TEST(ConvEdge, OneByOneKernel) {
  // 1x1 convolution is a per-pixel channel mix.
  core::Conv2d conv({.in_channels = 2, .out_channels = 1, .kernel = 1,
                     .stride = 1, .pad = 0});
  conv.weight().value.at(0, 0, 0, 0) = 2.0f;
  conv.weight().value.at(0, 1, 0, 0) = -1.0f;
  core::Tensor x({1, 2, 2, 2});
  x.at(0, 0, 0, 0) = 3.0f;
  x.at(0, 1, 0, 0) = 1.0f;
  core::Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
}

TEST(ConvEdge, FiveByFiveKernelBothAlgosAgree) {
  ou::Rng rng(1);
  core::Conv2d direct({.in_channels = 2, .out_channels = 3, .kernel = 5,
                       .stride = 1, .pad = 2, .algo = core::ConvAlgo::kDirect});
  core::init_conv(direct, rng);
  core::Conv2d lowered({.in_channels = 2, .out_channels = 3, .kernel = 5,
                        .stride = 1, .pad = 2,
                        .algo = core::ConvAlgo::kIm2col});
  lowered.weight().value = direct.weight().value;
  core::Tensor x({1, 2, 7, 7});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0, 1));
  }
  core::Tensor a = direct.forward(x);
  core::Tensor b = lowered.forward(x);
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-4f);
  }
}

TEST(BatchNormEdge, ConstantChannelStaysFinite) {
  core::BatchNorm2d bn(1);
  bn.set_training(true);
  core::Tensor x = core::Tensor::full({2, 1, 3, 3}, 5.0f);  // zero variance
  core::Tensor y = bn.forward(x);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
    EXPECT_NEAR(y.data()[i], 0.0f, 1e-3f);  // (x - mean) == 0
  }
  // Backward on the degenerate input is finite too.
  core::Tensor g = core::Tensor::full({2, 1, 3, 3}, 1.0f);
  core::Tensor gin = bn.backward(g);
  for (std::size_t i = 0; i < gin.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(gin.data()[i]));
  }
}

TEST(BnEngineEdge, NonPowerOfTwoPlaneUsesDividerPath) {
  // extent 5 -> 25 elements/channel: the mean/variance divisions take the
  // bit-serial divider path instead of the shift path.
  fpga::BnEngine engine({.channels = 2, .extent = 5});
  core::Tensor gamma = core::Tensor::full({2}, 1.0f);
  core::Tensor beta({2});
  engine.load_params(fixed::quantize(gamma, 20), fixed::quantize(beta, 20));

  ou::Rng rng(3);
  core::Tensor x({1, 2, 5, 5});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(1.5, 2.0));
  }
  core::BatchNorm2d ref(2);
  ref.set_use_batch_stats_in_eval(true);
  core::Tensor want = ref.forward(x);
  auto got = fixed::dequantize(
      engine.run(fixed::quantize(x.reshaped({2, 5, 5}), 20)));
  for (std::size_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-2f);
  }
}

TEST(DataLoaderEdge, BatchLargerThanDataset) {
  data::SyntheticConfig cfg{.num_classes = 2, .images_per_class = 2};
  data::Dataset ds = data::make_synthetic(cfg);
  data::DataLoader loader(ds, {.batch_size = 100, .shuffle = false});
  EXPECT_EQ(loader.batches_per_epoch(), 1);
  auto b = loader.next();
  EXPECT_EQ(b.size(), 4);
  EXPECT_FALSE(loader.has_next());
}

TEST(CifarEdge, Cifar10LoaderParsesLabelFirstRecords) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "odenet_cifar10_test";
  fs::create_directories(dir);
  const fs::path file = dir / "data_batch_1.bin";
  {
    std::ofstream os(file, std::ios::binary);
    os.put(static_cast<char>(9));  // label
    for (int i = 0; i < 3072; ++i) os.put(static_cast<char>(i % 251));
  }
  data::Dataset ds = data::load_cifar10_file(file.string());
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.num_classes, 10);
  EXPECT_EQ(ds.labels[0], 9);
  EXPECT_EQ(ds.pixels[5], 5);
  fs::remove_all(dir);
}

TEST(CheckpointEdge, FileRoundTripOnDisk) {
  namespace fs = std::filesystem;
  ou::Rng rng(4);
  models::WidthConfig w{.input_channels = 3, .input_size = 16,
                        .base_channels = 4, .num_classes = 4};
  models::Network a(models::make_spec(models::Arch::kROdeNet3, 14, w));
  a.init(rng);
  const fs::path path = fs::temp_directory_path() / "odenet_ckpt_test.bin";
  {
    std::ofstream os(path, std::ios::binary);
    a.save_weights(os);
  }
  models::Network b(models::make_spec(models::Arch::kROdeNet3, 14, w));
  {
    std::ifstream is(path, std::ios::binary);
    b.load_weights(is);
  }
  core::Tensor x({1, 3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0, 1));
  }
  core::Tensor la = a.forward(x);
  core::Tensor lb = b.forward(x);
  for (std::size_t i = 0; i < la.numel(); ++i) {
    EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
  }
  fs::remove(path);
}

TEST(CheckpointEdge, CorruptedFileThrows) {
  namespace fs = std::filesystem;
  ou::Rng rng(5);
  models::WidthConfig w{.input_channels = 3, .input_size = 16,
                        .base_channels = 4, .num_classes = 4};
  models::Network a(models::make_spec(models::Arch::kResNet, 14, w));
  a.init(rng);
  std::stringstream ss;
  a.save_weights(ss);
  std::string blob = ss.str();
  // Truncate: reader must throw, not return a half-loaded network.
  std::stringstream truncated(blob.substr(0, blob.size() / 2));
  models::Network b(models::make_spec(models::Arch::kResNet, 14, w));
  EXPECT_THROW(b.load_weights(truncated), odenet::Error);
}

TEST(ExplorerEdge, TimingFilterDisabledAdmitsX32) {
  sched::LatencyModel model;
  fpga::ResourceModel resources;
  sched::PartitionExplorer explorer(model, resources);
  sched::ExplorerOptions opts;
  opts.require_timing = false;
  auto all = explorer.enumerate(models::make_spec(models::Arch::kROdeNet3, 56),
                                opts);
  bool saw_x32 = false;
  for (const auto& c : all) {
    if (!c.partition.offloaded.empty() && c.partition.parallelism == 32) {
      saw_x32 = true;
      EXPECT_FALSE(c.timing_met);
    }
  }
  EXPECT_TRUE(saw_x32);
}

TEST(OdeBlockEdge, UnitTimeSpanDiffersFromResNetCompatible) {
  ou::Rng rng(6);
  models::OdeBlock resnet_like({.channels = 3, .executions = 4}, "rc");
  core::init_block(resnet_like.block(), rng);
  resnet_like.block().bn1().set_use_batch_stats_in_eval(true);
  resnet_like.block().bn2().set_use_batch_stats_in_eval(true);

  models::OdeBlock unit({.channels = 3, .executions = 4,
                         .time_span = models::TimeSpan::kUnit}, "u");
  auto src = resnet_like.block().params();
  auto dst = unit.block().params();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  unit.block().bn1().set_use_batch_stats_in_eval(true);
  unit.block().bn2().set_use_batch_stats_in_eval(true);

  core::Tensor x({1, 3, 5, 5});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0, 1));
  }
  core::Tensor a = resnet_like.forward(x);  // h = 1 per step
  core::Tensor b = unit.forward(x);         // h = 1/4 per step
  core::Tensor diff = a;
  diff.axpy(-1.0f, b);
  EXPECT_GT(diff.abs_max(), 1e-3f);
}

TEST(TensorEdge, ZeroSizedDimensions) {
  core::Tensor t({0, 3, 4, 4});
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.sum(), 0.0f);
}
