// Optimizer, LR schedule, metrics.
#include <gtest/gtest.h>

#include "train/metrics.hpp"
#include "train/sgd.hpp"

using namespace odenet::train;
using odenet::core::Param;
using odenet::core::Tensor;

namespace {
Param make_param(std::vector<float> values) {
  Tensor t({static_cast<int>(values.size())});
  for (std::size_t i = 0; i < values.size(); ++i) t.at1(static_cast<int>(i)) = values[i];
  return Param("p", std::move(t));
}
}  // namespace

TEST(Sgd, PlainStepMath) {
  Param p = make_param({1.0f});
  p.grad.at1(0) = 0.5f;
  Sgd opt({&p}, {.learning_rate = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  opt.step();
  // w <- 1 - 0.1*0.5 = 0.95.
  EXPECT_NEAR(p.value.at1(0), 0.95f, 1e-6f);
}

TEST(Sgd, WeightDecayAddsToGradient) {
  Param p = make_param({2.0f});
  p.grad.at1(0) = 0.0f;
  Sgd opt({&p}, {.learning_rate = 0.1, .momentum = 0.0, .weight_decay = 1e-1});
  opt.step();
  // effective grad = 0 + 0.1*2 = 0.2; w <- 2 - 0.02 = 1.98.
  EXPECT_NEAR(p.value.at1(0), 1.98f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p = make_param({0.0f});
  Sgd opt({&p}, {.learning_rate = 1.0, .momentum = 0.5, .weight_decay = 0.0});
  p.grad.at1(0) = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p.value.at1(0), -1.0f, 1e-6f);
  p.grad.at1(0) = 1.0f;
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value.at1(0), -2.5f, 1e-6f);
  p.grad.at1(0) = 0.0f;
  opt.step();  // v=0.75, w=-3.25 (momentum coasts)
  EXPECT_NEAR(p.value.at1(0), -3.25f, 1e-6f);
}

TEST(Sgd, ZeroGradsClears) {
  Param p = make_param({1.0f});
  p.grad.at1(0) = 3.0f;
  Sgd opt({&p}, {});
  opt.zero_grads();
  EXPECT_EQ(p.grad.at1(0), 0.0f);
}

TEST(Sgd, RejectsBadConfig) {
  Param p = make_param({1.0f});
  EXPECT_THROW(Sgd({&p}, {.learning_rate = 0.0}), odenet::Error);
  EXPECT_THROW(Sgd({&p}, {.momentum = 1.0}), odenet::Error);
  EXPECT_THROW(Sgd({}, {}), odenet::Error);
}

TEST(LrSchedule, PaperSchedule) {
  // 0.01, /10 at 100 and 150 (paper §4.3).
  LrSchedule s;
  EXPECT_DOUBLE_EQ(s.lr_at(0), 0.01);
  EXPECT_DOUBLE_EQ(s.lr_at(99), 0.01);
  EXPECT_DOUBLE_EQ(s.lr_at(100), 0.001);
  EXPECT_DOUBLE_EQ(s.lr_at(149), 0.001);
  EXPECT_DOUBLE_EQ(s.lr_at(150), 0.0001);
  EXPECT_DOUBLE_EQ(s.lr_at(199), 0.0001);
}

TEST(LrSchedule, CustomMilestones) {
  LrSchedule s{.base_lr = 1.0, .milestones = {2, 4}, .factor = 0.5};
  EXPECT_DOUBLE_EQ(s.lr_at(1), 1.0);
  EXPECT_DOUBLE_EQ(s.lr_at(2), 0.5);
  EXPECT_DOUBLE_EQ(s.lr_at(4), 0.25);
}

TEST(Metrics, Top1) {
  Tensor logits({3, 3});
  logits.at2(0, 0) = 1;   // pred 0, label 0: hit
  logits.at2(1, 2) = 1;   // pred 2, label 1: miss
  logits.at2(2, 1) = 1;   // pred 1, label 1: hit
  EXPECT_NEAR(top1_accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, TopK) {
  Tensor logits({1, 4});
  logits.at2(0, 0) = 4;
  logits.at2(0, 1) = 3;
  logits.at2(0, 2) = 2;
  logits.at2(0, 3) = 1;
  EXPECT_EQ(topk_accuracy(logits, {2}, 1), 0.0);
  EXPECT_EQ(topk_accuracy(logits, {2}, 2), 0.0);
  EXPECT_EQ(topk_accuracy(logits, {2}, 3), 1.0);
  EXPECT_THROW(topk_accuracy(logits, {2}, 5), odenet::Error);
}

TEST(Metrics, RunningMeanWeighted) {
  RunningMean m;
  m.add(1.0, 3);  // three samples of value 1
  m.add(5.0, 1);
  EXPECT_NEAR(m.mean(), 2.0, 1e-12);
  EXPECT_EQ(m.count(), 4u);
  RunningMean empty;
  EXPECT_EQ(empty.mean(), 0.0);
}
