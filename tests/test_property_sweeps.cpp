// Property-based sweeps across modules: invariants that must hold over
// whole parameter grids, not just the paper's configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/init.hpp"
#include "fixed/qformat.hpp"
#include "fpga/accelerator.hpp"
#include "models/network.hpp"
#include "models/param_count.hpp"
#include "sched/latency_model.hpp"
#include "solver/ode.hpp"
#include "util/rng.hpp"

using namespace odenet;
namespace ou = odenet::util;

// ---------------------------------------------------------------------------
// Parameter accounting: analytic == constructed, for a grid of widths.

using WidthCase = std::tuple<int /*base*/, int /*input*/, int /*classes*/>;

class ParamAccountingSweep
    : public ::testing::TestWithParam<std::tuple<models::Arch, WidthCase>> {};

TEST_P(ParamAccountingSweep, AnalyticMatchesConstructedNetwork) {
  const auto [arch, wc] = GetParam();
  const auto [base, input, classes] = wc;
  models::WidthConfig width{.input_channels = 3, .input_size = input,
                            .base_channels = base, .num_classes = classes};
  const int n = 20;
  models::NetworkSpec spec = models::make_spec(arch, n, width);
  models::Network net(spec);
  EXPECT_EQ(net.param_count(), models::network_param_count(spec))
      << models::arch_name(arch) << " base=" << base << " input=" << input;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParamAccountingSweep,
    ::testing::Combine(::testing::ValuesIn(models::all_archs()),
                       ::testing::Values(WidthCase{4, 16, 10},
                                         WidthCase{8, 32, 100},
                                         WidthCase{12, 16, 7})));

// ---------------------------------------------------------------------------
// Parameter monotonicity: ODE variants flat in N, stacked variants growing.

TEST(ParamProperties, OdeVariantsFlatInN) {
  for (models::Arch a : {models::Arch::kOdeNet, models::Arch::kROdeNet1,
                         models::Arch::kROdeNet2, models::Arch::kROdeNet3}) {
    const double base = models::network_param_kb(models::make_spec(a, 20));
    for (int n : {32, 44, 56}) {
      EXPECT_DOUBLE_EQ(models::network_param_kb(models::make_spec(a, n)),
                       base)
          << models::arch_name(a);
    }
  }
}

TEST(ParamProperties, StackedVariantsStrictlyGrowInN) {
  for (models::Arch a : {models::Arch::kResNet, models::Arch::kHybrid3}) {
    double prev = 0.0;
    for (int n : {20, 32, 44, 56}) {
      const double kb = models::network_param_kb(models::make_spec(a, n));
      EXPECT_GT(kb, prev) << models::arch_name(a) << " N=" << n;
      prev = kb;
    }
  }
}

TEST(ParamProperties, OrderingAtEveryN) {
  // rODENet-1 < rODENet-2 ~ rODENet-1+2 < rODENet-3 < ODENet < Hybrid-3
  // <= ResNet, the Figure-5 bar ordering.
  for (int n : {20, 32, 44, 56}) {
    auto kb = [n](models::Arch a) {
      return models::network_param_kb(models::make_spec(a, n));
    };
    EXPECT_LT(kb(models::Arch::kROdeNet1), kb(models::Arch::kROdeNet2));
    EXPECT_LT(kb(models::Arch::kROdeNet2), kb(models::Arch::kROdeNet3));
    EXPECT_LT(kb(models::Arch::kROdeNet3), kb(models::Arch::kOdeNet));
    EXPECT_LT(kb(models::Arch::kOdeNet), kb(models::Arch::kHybrid3));
    EXPECT_LE(kb(models::Arch::kHybrid3), kb(models::Arch::kResNet));
  }
}

// ---------------------------------------------------------------------------
// Latency model: monotonicity properties.

TEST(LatencyProperties, SoftwareTimeStrictlyGrowsWithN) {
  sched::CpuModel cpu;
  for (models::Arch a : models::all_archs()) {
    double prev = 0.0;
    for (int n : {20, 32, 44, 56}) {
      const double s = cpu.network_seconds(models::make_spec(a, n));
      EXPECT_GT(s, prev) << models::arch_name(a) << " N=" << n;
      prev = s;
    }
  }
}

TEST(LatencyProperties, PlCyclesMonotoneInParallelism) {
  models::NetworkSpec spec = models::make_spec(models::Arch::kROdeNet3, 56);
  const auto& s = spec.stage(models::StageId::kLayer3_2);
  std::uint64_t prev = UINT64_MAX;
  for (int par : {1, 2, 4, 8, 16, 32, 64}) {
    const std::uint64_t c = sched::LatencyModel::pl_block_cycles(s, par);
    EXPECT_LE(c, prev) << "par=" << par;
    prev = c;
  }
  // Beyond the channel count parallelism stops helping.
  EXPECT_EQ(sched::LatencyModel::pl_block_cycles(s, 64),
            sched::LatencyModel::pl_block_cycles(s, 64));
}

TEST(LatencyProperties, SlowerAxiNeverImprovesLatency) {
  sched::LatencyModel model;
  models::NetworkSpec spec = models::make_spec(models::Arch::kROdeNet3, 56);
  sched::Partition fast = sched::Partition::single(
      models::StageId::kLayer3_2, 16);
  sched::Partition slow = fast;
  slow.axi.cycles_per_word = 8.0;  // pessimistic DMA
  const double t_fast = model.evaluate(spec, fast).total_with_pl;
  const double t_slow = model.evaluate(spec, slow).total_with_pl;
  EXPECT_GT(t_slow, t_fast);
  // Even 8 cycles/word keeps the offload profitable for rODENet-3-56.
  EXPECT_GT(model.evaluate(spec, slow).overall_speedup, 1.5);
}

TEST(LatencyProperties, RatioColumnsSumBelowOne) {
  sched::LatencyModel model;
  for (models::Arch a : {models::Arch::kROdeNet12}) {
    sched::Partition p;
    p.offloaded = {models::StageId::kLayer1, models::StageId::kLayer2_2};
    for (int n : {20, 32, 44, 56}) {
      auto row = model.evaluate(models::make_spec(a, n), p);
      double sum = 0.0;
      for (const auto& t : row.targets) sum += t.ratio_of_total;
      EXPECT_LT(sum, 1.0) << "N=" << n;
      EXPECT_GT(sum, 0.5) << "N=" << n;  // the targets dominate by design
    }
  }
}

// ---------------------------------------------------------------------------
// Fixed point: algebraic properties across formats.

template <typename Q>
void check_fixed_algebra(std::uint64_t seed) {
  ou::Rng rng(seed);
  const double bound = Q::max_value() / 4.0;
  for (int i = 0; i < 300; ++i) {
    const double av = rng.uniform(-bound, bound);
    const double bv = rng.uniform(-bound, bound);
    const auto a = Q::from_double(av);
    const auto b = Q::from_double(bv);
    // Commutativity (bit exact).
    EXPECT_EQ((a + b).raw(), (b + a).raw());
    EXPECT_EQ((a * b).raw(), (b * a).raw());
    // Identity elements.
    EXPECT_EQ((a + Q::from_int(0)).raw(), a.raw());
    EXPECT_EQ((a * Q::from_int(1)).raw(), a.raw());
    // Negation round trip.
    EXPECT_EQ((-(-a)).raw(), a.raw());
    // Subtraction consistency.
    EXPECT_EQ((a - b).raw(), (a + (-b)).raw());
  }
}

TEST(FixedProperties, AlgebraQ20) { check_fixed_algebra<fixed::Q20>(1); }
TEST(FixedProperties, AlgebraQ16) { check_fixed_algebra<fixed::Q16>(2); }
TEST(FixedProperties, AlgebraQ24) { check_fixed_algebra<fixed::Q24>(3); }
TEST(FixedProperties, AlgebraQ8_16bit) {
  check_fixed_algebra<fixed::Q8_16bit>(4);
}

TEST(FixedProperties, ConversionMonotone) {
  // x <= y implies fixed(x) <= fixed(y), for every format.
  ou::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    double x = rng.uniform(-100.0, 100.0);
    double y = rng.uniform(-100.0, 100.0);
    if (x > y) std::swap(x, y);
    EXPECT_LE(fixed::Q20::from_double(x).raw(),
              fixed::Q20::from_double(y).raw());
    EXPECT_LE(fixed::Q12_16bit::from_double(x).raw(),
              fixed::Q12_16bit::from_double(y).raw());
  }
}

// ---------------------------------------------------------------------------
// Solvers: superposition on linear dynamics, for every fixed-step method.

class SolverLinearity : public ::testing::TestWithParam<solver::Method> {};

TEST_P(SolverLinearity, SuperpositionHolds) {
  // For dz/dt = A z (linear), solve(a*x + b*y) == a*solve(x) + b*solve(y)
  // holds exactly for any one-step method built from matrix-vector ops.
  const auto method = GetParam();
  solver::FunctionDynamics f([](const core::Tensor& z, float) {
    core::Tensor out({2});
    out.at1(0) = 0.3f * z.at1(0) - 0.8f * z.at1(1);
    out.at1(1) = 0.5f * z.at1(0) + 0.1f * z.at1(1);
    return out;
  });
  core::Tensor x({2}), y({2});
  x.at1(0) = 1.0f;
  x.at1(1) = -0.5f;
  y.at1(0) = 0.25f;
  y.at1(1) = 2.0f;
  const float a = 1.5f, b = -0.75f;

  solver::SolveOptions opts{.method = method, .steps = 8};
  core::Tensor combined = x;
  combined.scale(a);
  combined.axpy(b, y);
  core::Tensor lhs = solver::ode_solve(f, combined, 0.0f, 1.0f, opts);
  core::Tensor sx = solver::ode_solve(f, x, 0.0f, 1.0f, opts);
  core::Tensor sy = solver::ode_solve(f, y, 0.0f, 1.0f, opts);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(lhs.at1(i), a * sx.at1(i) + b * sy.at1(i), 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(FixedStep, SolverLinearity,
                         ::testing::Values(solver::Method::kEuler,
                                           solver::Method::kHeun,
                                           solver::Method::kRk4));

// ---------------------------------------------------------------------------
// Accelerator: functional equivalence across a geometry/precision grid.

using AccelCase = std::tuple<int /*channels*/, int /*extent*/, int /*par*/,
                             int /*frac*/>;

class AcceleratorSweep : public ::testing::TestWithParam<AccelCase> {};

TEST_P(AcceleratorSweep, BranchEvalTracksSoftware) {
  const auto [channels, extent, par, frac] = GetParam();
  ou::Rng rng(99);
  core::BuildingBlock block({.in_channels = channels,
                             .out_channels = channels, .stride = 1,
                             .time_channel = true});
  core::init_block(block, rng);
  block.bn1().set_use_batch_stats_in_eval(true);
  block.bn2().set_use_batch_stats_in_eval(true);
  for (auto* p : block.params()) {
    p->value = fixed::dequantize(fixed::quantize(p->value, frac));
  }

  fpga::OdeBlockAccelerator accel({.channels = channels, .extent = extent,
                                   .parallelism = par, .frac_bits = frac});
  accel.load_weights(block);

  core::Tensor z({1, channels, extent, extent});
  for (std::size_t i = 0; i < z.numel(); ++i) {
    z.data()[i] = static_cast<float>(rng.normal(0.0, 0.4));
  }
  core::Tensor want = block.branch_forward(z, 0.5f);
  core::Tensor got = accel.eval_branch(z, 0.5f);

  // Error budget scales with the quantization step.
  const double tol = frac >= 16 ? 3e-2 : 0.3;
  for (std::size_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], tol)
        << "c=" << channels << " e=" << extent << " par=" << par
        << " frac=" << frac << " at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AcceleratorSweep,
    ::testing::Values(AccelCase{2, 4, 1, 20}, AccelCase{4, 6, 2, 20},
                      AccelCase{8, 8, 8, 20}, AccelCase{4, 4, 4, 16},
                      AccelCase{4, 4, 4, 12}, AccelCase{6, 5, 16, 20}));

// ---------------------------------------------------------------------------
// Network: logits are finite for every architecture over random inputs.

TEST(NetworkProperties, FiniteLogitsAcrossArchitectures) {
  models::WidthConfig width{.input_channels = 3, .input_size = 16,
                            .base_channels = 4, .num_classes = 6};
  ou::Rng rng(7);
  for (models::Arch a : models::all_archs()) {
    if (!models::valid_depth(a, 20)) continue;
    models::Network net(models::make_spec(a, 20, width));
    net.init(rng);
    core::Tensor x({2, 3, 16, 16});
    for (std::size_t i = 0; i < x.numel(); ++i) {
      x.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
    }
    core::Tensor logits = net.forward(x);
    for (std::size_t i = 0; i < logits.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(logits.data()[i])) << models::arch_name(a);
    }
  }
}
