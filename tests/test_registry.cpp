// models::SnapshotRegistry — the multi-tenant model store: accuracy-gated
// publish, delta publish accounting and assembly parity, rollback,
// retention eviction with pinning, and subscriber activation ordering.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "models/network.hpp"
#include "models/registry.hpp"
#include "models/snapshot.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

using namespace odenet;
using models::Arch;
using models::ModelSnapshot;
using models::SnapshotDelta;
using models::SnapshotRegistry;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

models::Network make_net(std::uint64_t seed) {
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  util::Rng rng(seed);
  net.init(rng);
  return net;
}

/// Nudges only the classifier head, leaving the trunk untouched — the
/// head-fine-tune shape the delta path exists for.
void perturb_fc(models::Network& net, float delta) {
  for (core::Param* p : net.params()) {
    if (p->name.rfind("fc.", 0) == 0) {
      for (std::size_t i = 0; i < p->value.numel(); ++i) {
        p->value.data()[i] += delta;
      }
    }
  }
  net.set_weight_version(0);  // weights mutated in place: invalidate packs
}

std::vector<std::uint64_t> retained_versions(const SnapshotRegistry& reg,
                                             const std::string& model) {
  std::vector<std::uint64_t> out;
  for (const auto& v : reg.versions(model)) out.push_back(v.version);
  return out;
}

}  // namespace

TEST(SnapshotRegistry, PublishActivatesAndListsVersions) {
  SnapshotRegistry reg;
  models::Network net = make_net(1);
  EXPECT_EQ(reg.active("m"), nullptr);

  const auto snap = net.export_snapshot();
  const auto result = reg.publish("m", snap);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.version, snap->version());
  EXPECT_FALSE(result.was_delta);
  EXPECT_EQ(result.tensors_shipped, result.tensors_total);
  EXPECT_EQ(result.bytes_shipped, result.bytes_total);
  EXPECT_GT(result.bytes_total, 0u);

  ASSERT_NE(reg.active("m"), nullptr);
  EXPECT_EQ(reg.active("m")->version(), snap->version());
  EXPECT_EQ(reg.find("m", snap->version()), snap);
  const auto versions = reg.versions("m");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_TRUE(versions[0].active);
  EXPECT_FALSE(versions[0].is_delta);

  // Models are namespaced: "m" is not visible under another name.
  EXPECT_EQ(reg.active("other"), nullptr);
  EXPECT_TRUE(reg.versions("other").empty());
}

TEST(SnapshotRegistry, AccuracyGateRefusesRegressionsAndKeepsActive) {
  SnapshotRegistry::Config cfg;
  cfg.gate_delta = 0.05;
  SnapshotRegistry reg(cfg);

  // Scores keyed by version so the eval is pure (called without
  // ordering guarantees).
  models::Network net = make_net(2);
  const auto good = net.export_snapshot();
  const auto bad = net.export_snapshot();
  const auto ok = net.export_snapshot();
  reg.set_eval([&](const ModelSnapshot& s) {
    if (s.version() == good->version()) return 0.90;
    if (s.version() == bad->version()) return 0.80;  // 0.10 regression
    return 0.88;                                     // within gate_delta
  });

  const auto r1 = reg.publish("m", good);
  EXPECT_TRUE(r1.accepted);
  EXPECT_DOUBLE_EQ(r1.accuracy, 0.90);

  const auto r2 = reg.publish("m", bad);
  EXPECT_FALSE(r2.accepted);
  EXPECT_FALSE(r2.reason.empty());
  EXPECT_DOUBLE_EQ(r2.accuracy, 0.80);
  EXPECT_DOUBLE_EQ(r2.active_accuracy, 0.90);
  // Refused snapshots are not retained and the active stays put.
  EXPECT_EQ(reg.active("m")->version(), good->version());
  EXPECT_EQ(reg.find("m", bad->version()), nullptr);
  ASSERT_EQ(reg.versions("m").size(), 1u);

  // A small regression within gate_delta passes.
  const auto r3 = reg.publish("m", ok);
  EXPECT_TRUE(r3.accepted);
  EXPECT_EQ(reg.active("m")->version(), ok->version());
}

TEST(SnapshotRegistry, DeltaPublishShipsOnlyChangedTensors) {
  SnapshotRegistry reg;
  models::Network net = make_net(3);
  const auto base = net.export_snapshot();
  ASSERT_TRUE(reg.publish("m", base).accepted);

  perturb_fc(net, 0.25f);
  const auto next = net.export_snapshot();
  const SnapshotDelta delta = ModelSnapshot::diff(*base, *next);
  // The head fine-tune touched exactly fc.weight + fc.bias.
  ASSERT_EQ(delta.params.size(), 2u);
  EXPECT_TRUE(delta.bns.empty());

  const auto result = reg.publish_delta("m", delta);
  EXPECT_TRUE(result.accepted);
  EXPECT_TRUE(result.was_delta);
  EXPECT_EQ(result.tensors_shipped, 2u);
  EXPECT_GT(result.tensors_total, result.tensors_shipped);
  EXPECT_EQ(result.bytes_shipped, delta.payload_bytes());
  EXPECT_LT(result.bytes_shipped, result.bytes_total);

  // The assembled active image equals the full next image bitwise, under
  // a fresh version (assembly mints its own id).
  const auto active = reg.active("m");
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->version(), result.version);
  EXPECT_NE(active->version(), next->version());
  EXPECT_TRUE(active->is_delta());
  EXPECT_EQ(active->delta_base(), base->version());
  ASSERT_EQ(active->params().size(), next->params().size());
  for (std::size_t i = 0; i < next->params().size(); ++i) {
    EXPECT_EQ(active->params()[i].values, next->params()[i].values)
        << next->params()[i].name;
  }
  EXPECT_EQ(active->changed_tensor_count(), 2u);
  EXPECT_EQ(active->changed_payload_bytes(), delta.payload_bytes());
}

TEST(SnapshotRegistry, DeltaAgainstEvictedBaseThrows) {
  SnapshotRegistry::Config cfg;
  cfg.retention = 1;
  SnapshotRegistry reg(cfg);
  models::Network net = make_net(4);
  const auto v1 = net.export_snapshot();
  ASSERT_TRUE(reg.publish("m", v1).accepted);
  perturb_fc(net, 0.1f);
  const auto v2 = net.export_snapshot();
  const SnapshotDelta stale = ModelSnapshot::diff(*v1, *v2);
  ASSERT_TRUE(reg.publish("m", v2).accepted);  // retention 1 evicts v1
  EXPECT_EQ(reg.find("m", v1->version()), nullptr);
  EXPECT_THROW(reg.publish_delta("m", stale), odenet::Error);
}

TEST(SnapshotRegistry, RollbackReactivatesARetainedVersion) {
  SnapshotRegistry reg;
  models::Network net = make_net(5);
  const auto v1 = net.export_snapshot();
  perturb_fc(net, 0.1f);
  const auto v2 = net.export_snapshot();
  ASSERT_TRUE(reg.publish("m", v1).accepted);
  ASSERT_TRUE(reg.publish("m", v2).accepted);
  EXPECT_EQ(reg.active("m")->version(), v2->version());

  std::vector<std::uint64_t> activations;
  const std::uint64_t token =
      reg.subscribe("m", [&](const std::string& model, ModelSnapshot::Ptr s) {
        EXPECT_EQ(model, "m");
        activations.push_back(s->version());
      });
  // Subscribing with an active version fires immediately.
  ASSERT_EQ(activations.size(), 1u);
  EXPECT_EQ(activations[0], v2->version());

  reg.rollback("m", v1->version());
  EXPECT_EQ(reg.active("m")->version(), v1->version());
  ASSERT_EQ(activations.size(), 2u);
  EXPECT_EQ(activations[1], v1->version());

  // Rolling back to the already-active version is a silent no-op.
  reg.rollback("m", v1->version());
  EXPECT_EQ(activations.size(), 2u);

  // Unknown versions / models throw.
  EXPECT_THROW(reg.rollback("m", 999999), odenet::Error);
  EXPECT_THROW(reg.rollback("ghost", v1->version()), odenet::Error);

  reg.unsubscribe(token);
  reg.rollback("m", v2->version());
  EXPECT_EQ(activations.size(), 2u);  // unsubscribed: no more callbacks
}

TEST(SnapshotRegistry, RetentionEvictsOldestButKeepsPinnedAndActive) {
  SnapshotRegistry::Config cfg;
  cfg.retention = 2;
  SnapshotRegistry reg(cfg);
  models::Network net = make_net(6);

  const auto v1 = net.export_snapshot();
  ASSERT_TRUE(reg.publish("m", v1).accepted);
  reg.pin("m", v1->version());

  std::vector<std::uint64_t> published = {v1->version()};
  for (int i = 0; i < 3; ++i) {
    perturb_fc(net, 0.05f);
    const auto snap = net.export_snapshot();
    published.push_back(snap->version());
    ASSERT_TRUE(reg.publish("m", snap).accepted);
  }

  // The ring targets `retention` entries total; the pinned v1 survives
  // every sweep, so it + the active v4 fill the budget of 2.
  EXPECT_EQ(retained_versions(reg, "m"),
            (std::vector<std::uint64_t>{published[0], published[3]}));
  const auto infos = reg.versions("m");
  EXPECT_TRUE(infos[0].pinned);
  EXPECT_TRUE(infos[1].active);

  // Unpinning makes v1 evictable on the next publish.
  reg.unpin("m", v1->version());
  perturb_fc(net, 0.05f);
  const auto v5 = net.export_snapshot();
  ASSERT_TRUE(reg.publish("m", v5).accepted);
  EXPECT_EQ(retained_versions(reg, "m"),
            (std::vector<std::uint64_t>{published[3], v5->version()}));

  EXPECT_THROW(reg.pin("m", published[1]), odenet::Error);  // evicted
}

TEST(SnapshotRegistry, TrainerPublishesDeltasIntoTheRegistry) {
  SnapshotRegistry reg;
  models::Network net = make_net(7);
  train::TrainerConfig cfg;
  cfg.registry = &reg;
  cfg.registry_model = "trained";
  train::Trainer trainer(net, cfg);

  // First publish ships the full image.
  const auto first = trainer.publish_snapshot();
  EXPECT_TRUE(trainer.last_publish().accepted);
  EXPECT_FALSE(trainer.last_publish().was_delta);
  ASSERT_NE(reg.active("trained"), nullptr);
  EXPECT_EQ(reg.active("trained")->version(), first->version());

  // A head-only change travels as a 2-tensor delta.
  perturb_fc(net, 0.125f);
  (void)trainer.publish_snapshot();
  EXPECT_TRUE(trainer.last_publish().accepted);
  EXPECT_TRUE(trainer.last_publish().was_delta);
  EXPECT_EQ(trainer.last_publish().tensors_shipped, 2u);
  EXPECT_LT(trainer.last_publish().bytes_shipped,
            trainer.last_publish().bytes_total);

  // The assembled registry image matches the live network's weights.
  const auto active = reg.active("trained");
  ASSERT_NE(active, nullptr);
  models::Network check = make_net(8);
  check.apply_snapshot(*active);
  auto live = net.params();
  auto loaded = check.params();
  ASSERT_EQ(live.size(), loaded.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = 0; j < live[i]->value.numel(); ++j) {
      ASSERT_EQ(live[i]->value.data()[j], loaded[i]->value.data()[j])
          << live[i]->name << "[" << j << "]";
    }
  }

  // With delta publishing off, the second publish re-ships everything.
  SnapshotRegistry full_reg;
  models::Network net2 = make_net(9);
  train::TrainerConfig cfg2;
  cfg2.registry = &full_reg;
  cfg2.registry_model = "full";
  cfg2.publish_delta = false;
  train::Trainer t2(net2, cfg2);
  (void)t2.publish_snapshot();
  perturb_fc(net2, 0.125f);
  (void)t2.publish_snapshot();
  EXPECT_FALSE(t2.last_publish().was_delta);
  EXPECT_EQ(t2.last_publish().tensors_shipped,
            t2.last_publish().tensors_total);
}
