// Cross-module integration: end-to-end training above chance, checkpoint
// round trips, adjoint-mode training, and software-vs-PL offload
// equivalence at the network level.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "fpga/accelerator.hpp"
#include "models/network.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

using namespace odenet;
using models::Arch;
using models::make_spec;
using models::Network;
using models::StageId;
using models::WidthConfig;

namespace {

WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 4};
}

data::SyntheticPair tiny_data() {
  data::SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.images_per_class = 16;
  cfg.height = 16;
  cfg.width = 16;
  cfg.noise_std = 0.08;
  cfg.seed = 33;
  return data::make_synthetic_pair(cfg, 8);
}

double train_and_eval(Network& net, int epochs, std::uint64_t seed = 17) {
  util::Rng rng(seed);
  net.init(rng);
  auto pair = tiny_data();
  data::DataLoader train_loader(pair.train,
                                {.batch_size = 16, .shuffle = true,
                                 .seed = seed});
  data::DataLoader test_loader(pair.test,
                               {.batch_size = 16, .shuffle = false});
  train::TrainerConfig cfg;
  cfg.epochs = epochs;
  cfg.sgd.learning_rate = 0.05;
  cfg.sgd.momentum = 0.9;
  cfg.schedule = {.base_lr = 0.05, .milestones = {}, .factor = 1.0};
  train::Trainer trainer(net, cfg);
  auto history = trainer.fit(train_loader, test_loader);
  // Loss must decrease from the first epoch to the last.
  EXPECT_LT(history.back().train_loss, history.front().train_loss)
      << net.name();
  return history.back().test_accuracy;
}

}  // namespace

TEST(Integration, ResNetLearnsAboveChance) {
  Network net(make_spec(Arch::kResNet, 14, tiny_width()));
  const double acc = train_and_eval(net, 8);
  EXPECT_GT(acc, 0.40) << "chance is 0.25";
}

TEST(Integration, ROdeNet3LearnsAboveChance) {
  Network net(make_spec(Arch::kROdeNet3, 14, tiny_width()));
  const double acc = train_and_eval(net, 4);
  EXPECT_GT(acc, 0.40);
}

TEST(Integration, OdeNetWithAdjointLearns) {
  models::SolverConfig solver;
  solver.gradient = models::GradientMode::kAdjoint;
  Network net(make_spec(Arch::kROdeNet3, 14, tiny_width()), solver);
  const double acc = train_and_eval(net, 4);
  EXPECT_GT(acc, 0.35);  // adjoint is noisier at coarse steps
}

TEST(Integration, Rk4TrainingRuns) {
  models::SolverConfig solver;
  solver.method = solver::Method::kRk4;
  solver.time_span = models::TimeSpan::kUnit;
  Network net(make_spec(Arch::kROdeNet3, 14, tiny_width()), solver);
  const double acc = train_and_eval(net, 2);
  EXPECT_GE(acc, 0.20);  // smoke: runs, not degenerate
}

TEST(Integration, CheckpointRoundTripPreservesLogits) {
  util::Rng rng(5);
  Network a(make_spec(Arch::kHybrid3, 14, tiny_width()));
  a.init(rng);
  // Give running BN stats some signal.
  a.set_training(true);
  core::Tensor x({2, 3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  a.forward(x);
  a.set_training(false);

  std::stringstream ss;
  a.save_weights(ss);
  Network b(make_spec(Arch::kHybrid3, 14, tiny_width()));
  b.load_weights(ss);

  core::Tensor la = a.forward(x);
  core::Tensor lb = b.forward(x);
  for (std::size_t i = 0; i < la.numel(); ++i) {
    EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
  }
}

TEST(Integration, CheckpointRejectsWrongArchitecture) {
  util::Rng rng(6);
  Network a(make_spec(Arch::kResNet, 14, tiny_width()));
  a.init(rng);
  std::stringstream ss;
  a.save_weights(ss);
  Network b(make_spec(Arch::kROdeNet3, 14, tiny_width()));
  EXPECT_THROW(b.load_weights(ss), odenet::Error);
}

TEST(Integration, OffloadedStageMatchesSoftwareNetwork) {
  // Replace the ODE stage's software solve by the PL accelerator and
  // compare the stage output: the fixed-point error must stay small.
  util::Rng rng(7);
  WidthConfig w = tiny_width();
  Network net(make_spec(Arch::kROdeNet3, 14, w));
  net.init(rng);
  net.set_training(false);

  auto* stage = net.stage(StageId::kLayer3_2);
  ASSERT_NE(stage, nullptr);
  ASSERT_TRUE(stage->is_ode());
  auto* ode = stage->ode();
  // Hardware BN computes batch statistics on the fly; configure the
  // software block identically for an apples-to-apples comparison.
  ode->block().bn1().set_use_batch_stats_in_eval(true);
  ode->block().bn2().set_use_batch_stats_in_eval(true);

  const int c = 4 * w.base_channels;
  const int extent = w.input_size / 4;
  core::Tensor z0({1, c, extent, extent});
  for (std::size_t i = 0; i < z0.numel(); ++i) {
    z0.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }

  core::Tensor sw = ode->forward(z0);

  fpga::OdeBlockAccelerator accel({.channels = c, .extent = extent,
                                   .parallelism = 16});
  accel.load_weights(ode->block());
  fpga::AcceleratorReport report;
  core::Tensor hw = accel.solve_euler(z0, ode->config().executions, 1.0f,
                                      &report);

  ASSERT_TRUE(hw.same_shape(sw));
  double max_err = 0;
  for (std::size_t i = 0; i < sw.numel(); ++i) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(hw.data()[i]) -
                                          sw.data()[i]));
  }
  EXPECT_LT(max_err, 0.08) << "fixed-point divergence too large";
  EXPECT_EQ(report.executions, ode->config().executions);
}

TEST(Integration, TrainingIsDeterministicForFixedSeeds) {
  Network a(make_spec(Arch::kROdeNet2, 14, tiny_width()));
  Network b(make_spec(Arch::kROdeNet2, 14, tiny_width()));
  const double acc_a = train_and_eval(a, 2, 77);
  const double acc_b = train_and_eval(b, 2, 77);
  EXPECT_DOUBLE_EQ(acc_a, acc_b);
}

TEST(Integration, AllArchitecturesTrainOneEpoch) {
  for (Arch arch : models::all_archs()) {
    if (!models::valid_depth(arch, 14)) continue;  // rODENet-1+2 needs N%4==0
    Network net(make_spec(arch, 14, tiny_width()));
    util::Rng rng(3);
    net.init(rng);
    auto pair = tiny_data();
    data::DataLoader loader(pair.train, {.batch_size = 16, .shuffle = true});
    train::TrainerConfig cfg;
    cfg.epochs = 1;
    cfg.sgd.learning_rate = 0.05;
    train::Trainer trainer(net, cfg);
    auto stats = trainer.train_epoch(loader, 0);
    EXPECT_TRUE(std::isfinite(stats.train_loss)) << net.name();
  }
}
