// The sharded cluster layer (src/cluster/): consistent-hash placement
// determinism and failover, spill-then-shed ordering, shard cordon
// rejection, the wire protocol (round-trip, truncation, bad magic), and
// the socket front-end end-to-end with pipelined concurrent clients.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "cluster/cluster.hpp"
#include "cluster/frontend.hpp"
#include "cluster/protocol.hpp"
#include "util/rng.hpp"

using namespace odenet;
using cluster::ClusterConfig;
using cluster::ClusterRouter;
using cluster::ClusterStats;
using cluster::EngineCluster;
using cluster::FrontendClient;
using cluster::FrontendConfig;
using cluster::kNoShard;
using cluster::ShardSpec;
using cluster::SocketFrontend;
using cluster::WireRequest;
using cluster::WireResponse;
using models::Arch;
using runtime::BackendLoad;
using runtime::InferenceResult;
using runtime::Priority;
using runtime::QueueFull;
using runtime::RoutePolicy;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

models::ModelSnapshot::Ptr tiny_snapshot(std::uint64_t seed) {
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  util::Rng rng(seed);
  net.init(rng);
  return models::ModelSnapshot::capture(net);
}

core::Tensor random_image(util::Rng& rng) {
  core::Tensor x({3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return x;
}

/// N identical tiny shards. sim_pacing throttles each shard to a
/// wall-clock-bound capacity (see BackendConfig::sim_batch_latency) so
/// spill tests can fill a queue deterministically on any host.
std::vector<ShardSpec> tiny_shards(
    std::size_t n, std::chrono::microseconds sim_pacing = {},
    std::size_t max_queue_depth = 0, int max_batch = 8) {
  std::vector<ShardSpec> shards;
  for (std::size_t i = 0; i < n; ++i) {
    ShardSpec spec;
    spec.snapshot = tiny_snapshot(1);  // same weights on every shard
    spec.engine.max_batch = max_batch;
    spec.engine.max_delay = std::chrono::microseconds(500);
    spec.engine.max_queue_depth = max_queue_depth;
    spec.engine.backends[0].sim_batch_latency = sim_pacing;
    shards.push_back(std::move(spec));
  }
  return shards;
}

BackendLoad shard_load(std::size_t depth, double seconds) {
  BackendLoad l;
  l.queue_depth = depth;
  l.modeled_request_seconds = seconds;
  l.measured_request_seconds = seconds;
  return l;
}

runtime::SubmitOptions for_tenant(const std::string& tenant) {
  runtime::SubmitOptions opts;
  opts.tenant = tenant;
  return opts;
}

}  // namespace

// ---- ClusterRouter: placement ------------------------------------------

TEST(ClusterRouter, PlacementIsDeterministicAcrossInstances) {
  const std::vector<std::pair<std::string, double>> shards = {
      {"shard0", 1.0}, {"shard1", 1.0}, {"shard2", 1.0}, {"shard3", 1.0}};
  ClusterRouter a(shards, 64);
  ClusterRouter b(shards, 64);
  std::set<std::size_t> used;
  for (int t = 0; t < 200; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const std::size_t home = a.primary(tenant);
    ASSERT_LT(home, 4u);
    EXPECT_EQ(b.primary(tenant), home) << tenant;  // same ring, same home
    EXPECT_EQ(a.primary(tenant), home) << tenant;  // and stable per call
    used.insert(home);
  }
  // 200 tenants over 4 shards x 64 vnodes: every shard owns some arc.
  EXPECT_EQ(used.size(), 4u);
}

TEST(ClusterRouter, RemovingAShardOnlyRemapsItsOwnTenants) {
  const std::vector<std::pair<std::string, double>> four = {
      {"a", 1.0}, {"b", 1.0}, {"c", 1.0}, {"d", 1.0}};
  const std::vector<std::pair<std::string, double>> three = {
      {"a", 1.0}, {"b", 1.0}, {"c", 1.0}};
  ClusterRouter before(four, 64);
  ClusterRouter after(three, 64);
  for (int t = 0; t < 200; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const std::size_t home = before.primary(tenant);
    if (home != 3) {
      // The consistent-hashing contract: tenants of surviving shards
      // stay put when another shard leaves the ring.
      EXPECT_EQ(after.primary(tenant), home) << tenant;
    } else {
      EXPECT_LT(after.primary(tenant), 3u) << tenant;
    }
  }
}

TEST(ClusterRouter, FailoverWalksRingPastNonAdmittingShards) {
  const std::vector<std::pair<std::string, double>> shards = {
      {"shard0", 1.0}, {"shard1", 1.0}, {"shard2", 1.0}};
  ClusterRouter router(shards, 64);
  const std::string tenant = "tenant-42";
  const std::size_t home = router.primary(tenant);

  std::vector<bool> admitting(3, true);
  admitting[home] = false;
  const std::size_t fallback = router.primary(tenant, admitting);
  ASSERT_NE(fallback, home);
  ASSERT_NE(fallback, kNoShard);
  // Deterministic: the same cordon maps the tenant to the same fallback.
  EXPECT_EQ(router.primary(tenant, admitting), fallback);
  // Cordoning the third shard (neither home nor fallback) must not move
  // the tenant off its home.
  std::vector<bool> other(3, true);
  other[3 - home - fallback] = false;
  EXPECT_EQ(router.primary(tenant, other), home);
  // Nobody admitting: no shard.
  EXPECT_EQ(router.primary(tenant, {false, false, false}), kNoShard);
}

TEST(ClusterRouter, PlanIsPrimaryThenCostOrderedSpillCandidates) {
  const std::vector<std::pair<std::string, double>> shards = {
      {"shard0", 1.0}, {"shard1", 1.0}, {"shard2", 1.0}, {"shard3", 1.0}};
  ClusterRouter router(shards, 64, RoutePolicy::kMeasuredLatency);
  const std::string tenant = "tenant-7";
  const std::size_t home = router.primary(tenant);

  // Loads chosen so the cost ranking is 2 < 0 < 1 < 3 (cost = (depth+1)*t):
  // 0: 3*2ms=6ms, 1: 1*8ms=8ms, 2: 1*1ms=1ms, 3: 10*4ms=40ms.
  const std::vector<BackendLoad> loads = {
      shard_load(2, 2e-3), shard_load(0, 8e-3), shard_load(0, 1e-3),
      shard_load(9, 4e-3)};
  std::vector<std::size_t> expected = {2, 0, 1, 3};
  expected.erase(std::find(expected.begin(), expected.end(), home));
  expected.insert(expected.begin(), home);

  EXPECT_EQ(router.plan(tenant, loads, std::vector<bool>(4, true)), expected);

  // Cordoned shards drop out of the plan entirely (home or spill).
  std::vector<bool> admitting(4, true);
  admitting[expected[1]] = false;
  std::vector<std::size_t> pruned = expected;
  pruned.erase(pruned.begin() + 1);
  EXPECT_EQ(router.plan(tenant, loads, admitting), pruned);

  EXPECT_TRUE(
      router.plan(tenant, loads, std::vector<bool>(4, false)).empty());
}

// ---- EngineCluster: spill-then-shed -----------------------------------

TEST(EngineCluster, ServesThroughTheHomeShardAndMatchesDirectForward) {
  EngineCluster cluster(tiny_shards(3));
  util::Rng rng(11);
  core::Tensor image = random_image(rng);
  core::Tensor reference_input = image;

  const std::string tenant = "tenant-parity";
  std::size_t shard = kNoShard;
  InferenceResult result =
      cluster.submit(std::move(image), for_tenant(tenant), &shard).get();
  EXPECT_EQ(shard, cluster.primary_shard(tenant));

  // Cluster placement must not perturb the math: same logits as a direct
  // forward of the same snapshot.
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  util::Rng ref_rng(1);
  net.init(ref_rng);
  net.set_training(false);
  core::Tensor batch({1, 3, 16, 16});
  std::copy_n(reference_input.data(), reference_input.numel(), batch.data());
  core::Tensor reference = net.forward(batch);
  ASSERT_EQ(result.logits.numel(), 5u);
  for (int c = 0; c < 5; ++c) {
    EXPECT_FLOAT_EQ(result.logits.at1(c), reference.at2(0, c)) << c;
  }

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.spilled, 0u);
  EXPECT_EQ(stats.shards[shard].placed, 1u);
}

TEST(EngineCluster, SpillsToSiblingWhenHomeShardIsFullThenSheds) {
  // Two throttled shards (100 ms per singleton batch), queue depth 1:
  // a burst from ONE tenant overflows its home shard onto the sibling,
  // and once both are full the cluster sheds with QueueFull.
  EngineCluster cluster(tiny_shards(2, std::chrono::milliseconds(100),
                                    /*max_queue_depth=*/1,
                                    /*max_batch=*/1));
  util::Rng rng(22);
  const std::string tenant = "tenant-burst";

  std::vector<std::future<InferenceResult>> futures;
  std::vector<std::size_t> placed_on;
  for (int i = 0; i < 8; ++i) {
    std::size_t shard = kNoShard;
    futures.push_back(
        cluster.submit(random_image(rng), for_tenant(tenant), &shard));
    placed_on.push_back(shard);
  }

  int ok = 0;
  int shed = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++ok;
    } catch (const QueueFull&) {
      ++shed;
    }
  }
  const ClusterStats stats = cluster.stats();
  // One tenant's burst crossed shards: the home shard filled (1 in
  // flight + 1 queued), the spill took more, and the rest shed.
  EXPECT_GT(stats.spilled, 0u);
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(static_cast<std::uint64_t>(shed), stats.shed);
  EXPECT_EQ(ok + shed, 8);
  // Requests landed on BOTH shards even though one tenant owns the hash.
  std::set<std::size_t> used(placed_on.begin(), placed_on.end());
  used.erase(kNoShard);
  EXPECT_EQ(used.size(), 2u);
}

TEST(EngineCluster, SpillDisabledShedsAtTheHomeShard) {
  ClusterConfig cfg;
  cfg.spill = false;
  EngineCluster cluster(tiny_shards(2, std::chrono::milliseconds(100),
                                    /*max_queue_depth=*/1, /*max_batch=*/1),
                        cfg);
  util::Rng rng(33);
  const std::string tenant = "tenant-burst";
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(cluster.submit(random_image(rng), for_tenant(tenant)));
  }
  int shed = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const QueueFull&) {
      ++shed;
    }
  }
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.spilled, 0u);  // never leaves the home shard
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(shed), stats.shed);
  // The sibling shard saw nothing.
  const std::size_t home = cluster.primary_shard(tenant);
  EXPECT_EQ(stats.shards[1 - home].placed, 0u);
  EXPECT_EQ(stats.shards[1 - home].spilled_in, 0u);
}

TEST(EngineCluster, CordonedShardReceivesNothingAndFullCordonRejects) {
  EngineCluster cluster(tiny_shards(2));
  util::Rng rng(44);
  const std::string tenant = "tenant-x";
  const std::size_t home = cluster.primary_shard(tenant);

  // Cordon the home shard: traffic fails over to the sibling.
  cluster.set_admitting(home, false);
  EXPECT_FALSE(cluster.admitting(home));
  std::size_t shard = kNoShard;
  cluster.submit(random_image(rng), for_tenant(tenant), &shard).get();
  EXPECT_EQ(shard, 1 - home);

  // Cordon everything: submit fails fast with QueueFull, shard kNoShard.
  cluster.set_admitting(1 - home, false);
  shard = 0;
  auto future = cluster.submit(random_image(rng), for_tenant(tenant), &shard);
  EXPECT_EQ(shard, kNoShard);
  EXPECT_THROW(future.get(), QueueFull);
  EXPECT_EQ(cluster.stats().no_admitting, 1u);

  // Re-admit and the tenant lands back on its home shard.
  cluster.set_admitting(home, true);
  cluster.submit(random_image(rng), for_tenant(tenant), &shard).get();
  EXPECT_EQ(shard, home);
}

// ---- wire protocol -----------------------------------------------------

TEST(ClusterProtocol, RequestRoundTripsThroughEncodeDecode) {
  for (std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    WireRequest req;
    req.version = version;
    req.id = 0x0123456789ABCDEFull;
    req.priority = Priority::kHigh;
    req.evictable = false;
    req.deadline_us = 250000;
    req.tenant = "tenant-\xC3\xA9";  // arbitrary bytes survive
    if (version == 2) {
      req.model = "resnet-ode/tiny";
      req.model_version = 0xFEDCBA9876543210ull;
    }
    req.channels = 3;
    req.height = 2;
    req.width = 4;
    req.pixels.resize(24);
    for (std::size_t i = 0; i < req.pixels.size(); ++i) {
      req.pixels[i] = static_cast<float>(i) - 11.5f;
    }

    const std::vector<std::uint8_t> frame = cluster::encode_request(req);
    ASSERT_GE(frame.size(), cluster::kFrameHeaderBytes);
    const std::uint32_t payload = cluster::decode_frame_length(frame.data());
    ASSERT_EQ(payload + cluster::kFrameHeaderBytes, frame.size());

    const WireRequest back = cluster::decode_request(
        frame.data() + cluster::kFrameHeaderBytes, payload);
    EXPECT_EQ(back.version, version);
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.priority, req.priority);
    EXPECT_EQ(back.evictable, req.evictable);
    EXPECT_EQ(back.deadline_us, req.deadline_us);
    EXPECT_EQ(back.tenant, req.tenant);
    EXPECT_EQ(back.model, req.model);
    EXPECT_EQ(back.model_version, req.model_version);
    EXPECT_EQ(back.channels, req.channels);
    EXPECT_EQ(back.height, req.height);
    EXPECT_EQ(back.width, req.width);
    EXPECT_EQ(back.pixels, req.pixels);
  }
}

TEST(ClusterProtocol, ResponseRoundTripsThroughEncodeDecode) {
  for (std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    WireResponse res;
    res.version = version;
    res.id = 77;
    res.status = cluster::ResponseStatus::kShed;
    res.shard = 2;
    res.predicted = -1;
    res.latency_ms = 12.5f;
    if (version == 2) res.model_version = 41;
    res.logits = {0.5f, -1.25f, 3.0f};
    res.message = "cluster: all 4 candidate shard(s) full";

    const std::vector<std::uint8_t> frame = cluster::encode_response(res);
    const std::uint32_t payload = cluster::decode_frame_length(frame.data());
    const WireResponse back = cluster::decode_response(
        frame.data() + cluster::kFrameHeaderBytes, payload);
    EXPECT_EQ(back.version, version);
    EXPECT_EQ(back.id, res.id);
    EXPECT_EQ(back.status, res.status);
    EXPECT_EQ(back.shard, res.shard);
    EXPECT_EQ(back.predicted, res.predicted);
    EXPECT_FLOAT_EQ(back.latency_ms, res.latency_ms);
    EXPECT_EQ(back.model_version, version == 2 ? 41u : 0u);
    EXPECT_EQ(back.logits, res.logits);
    EXPECT_EQ(back.message, res.message);
  }
}

TEST(ClusterProtocol, V1FramesCannotCarryModelRefs) {
  // A v1 frame has no model fields; encoding must refuse rather than
  // silently drop a pinned model ref.
  WireRequest req;
  req.version = 1;
  req.model = "m";
  req.channels = 1;
  req.height = 1;
  req.width = 1;
  req.pixels = {0.0f};
  EXPECT_THROW(cluster::encode_request(req), odenet::Error);
  req.model.clear();
  req.model_version = 3;
  EXPECT_THROW(cluster::encode_request(req), odenet::Error);
  req.model_version = 0;
  EXPECT_NO_THROW(cluster::encode_request(req));
}

TEST(ClusterProtocol, TruncatedAndMalformedFramesThrowReadably) {
  // Both wire versions: every proper prefix must throw (never read out
  // of bounds, never return garbage) — the truncation fuzz.
  for (std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    WireRequest req;
    req.version = version;
    req.tenant = "t";
    if (version == 2) req.model = "m";
    req.channels = 1;
    req.height = 2;
    req.width = 2;
    req.pixels = {1.0f, 2.0f, 3.0f, 4.0f};
    const std::vector<std::uint8_t> frame = cluster::encode_request(req);
    const std::uint8_t* payload = frame.data() + cluster::kFrameHeaderBytes;
    const std::size_t size = frame.size() - cluster::kFrameHeaderBytes;

    for (std::size_t cut = 0; cut < size; ++cut) {
      EXPECT_THROW(cluster::decode_request(payload, cut), odenet::Error)
          << "v" << static_cast<int>(version) << " prefix of " << cut
          << " bytes";
    }
    // Trailing junk is rejected too (framing mismatch, not ignorable).
    std::vector<std::uint8_t> padded(payload, payload + size);
    padded.push_back(0);
    EXPECT_THROW(cluster::decode_request(padded.data(), padded.size()),
                 odenet::Error);
    // A response magic in a request slot is a protocol error.
    std::vector<std::uint8_t> wrong(payload, payload + size);
    wrong[0] = 0x52;  // 'R'
    EXPECT_THROW(cluster::decode_request(wrong.data(), wrong.size()),
                 odenet::Error);
    // Declaring more pixels than the payload carries must throw, not
    // read past the buffer: bump the channel count without adding bytes.
    std::vector<std::uint8_t> lying(payload, payload + size);
    // channels low byte: magic(4) + id(8) + priority(1) + flags(1) +
    // deadline(4) + [v2: model_version(8)] + tenant_len(2) +
    // [v2: model_len(2)] = offset 20 (v1) / 30 (v2).
    lying[version == 1 ? 20 : 30] = 9;
    EXPECT_THROW(cluster::decode_request(lying.data(), lying.size()),
                 odenet::Error);
  }

  // Response truncation fuzz, both versions.
  for (std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    WireResponse res;
    res.version = version;
    res.logits = {1.0f, 2.0f};
    res.message = "x";
    const std::vector<std::uint8_t> frame = cluster::encode_response(res);
    const std::uint8_t* payload = frame.data() + cluster::kFrameHeaderBytes;
    const std::size_t size = frame.size() - cluster::kFrameHeaderBytes;
    for (std::size_t cut = 0; cut < size; ++cut) {
      EXPECT_THROW(cluster::decode_response(payload, cut), odenet::Error)
          << "v" << static_cast<int>(version) << " prefix of " << cut
          << " bytes";
    }
  }
}

// ---- socket front-end --------------------------------------------------

TEST(SocketFrontend, ServesConcurrentPipelinedClientsWithIdCorrelation) {
  EngineCluster cluster(tiny_shards(2));
  SocketFrontend frontend(cluster, FrontendConfig{});
  frontend.start();
  ASSERT_GT(frontend.port(), 0);

  constexpr int kClients = 3;
  constexpr int kPerClient = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      FrontendClient client("127.0.0.1", frontend.port());
      util::Rng rng(100 + c);
      // Pipeline all requests, then collect all responses.
      std::set<std::uint64_t> outstanding;
      // Client 0 speaks the legacy v1 frames; the rest v2 — one server,
      // both dialects, responses echo the request's version.
      const std::uint8_t version = c == 0 ? 1 : 2;
      for (int i = 0; i < kPerClient; ++i) {
        WireRequest req;
        req.version = version;
        req.id = static_cast<std::uint64_t>(c) * 1000 + i;
        req.tenant = "tenant-" + std::to_string(c) + "-" + std::to_string(i);
        req.channels = 3;
        req.height = 16;
        req.width = 16;
        const core::Tensor image = random_image(rng);
        req.pixels.assign(image.data(), image.data() + image.numel());
        client.send(req);
        outstanding.insert(req.id);
      }
      for (int i = 0; i < kPerClient; ++i) {
        const WireResponse res = client.recv();
        // Correlation: every response id matches one outstanding request.
        ASSERT_EQ(outstanding.erase(res.id), 1u) << res.id;
        ASSERT_EQ(res.status, cluster::ResponseStatus::kOk) << res.message;
        EXPECT_EQ(res.version, version);
        if (version == 2) {
          // v2 responses name the snapshot version that served.
          EXPECT_GT(res.model_version, 0u);
        } else {
          EXPECT_EQ(res.model_version, 0u);
        }
        EXPECT_EQ(res.logits.size(), 5u);
        EXPECT_GE(res.predicted, 0);
        EXPECT_LT(res.predicted, 5);
        EXPECT_LT(res.shard, 2);
        ++ok;
      }
      EXPECT_TRUE(outstanding.empty());
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);

  // The last client can read its final frame a beat before the writer
  // thread bumps the counter — poll the monotone counters briefly.
  const auto expected = static_cast<std::uint64_t>(kClients * kPerClient);
  for (int i = 0; i < 200 && frontend.counters().responses < expected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const cluster::FrontendCounters counters = frontend.counters();
  EXPECT_EQ(counters.connections, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(counters.requests, expected);
  EXPECT_EQ(counters.responses, expected);
  EXPECT_EQ(counters.protocol_errors, 0u);

  frontend.stop();
  cluster.shutdown();
}

TEST(SocketFrontend, TruncatedFrameGetsErrorResponseAndDropsConnection) {
  EngineCluster cluster(tiny_shards(1));
  SocketFrontend frontend(cluster, FrontendConfig{});
  frontend.start();

  FrontendClient client("127.0.0.1", frontend.port());
  // A frame whose prefix promises more payload than we send, then EOF:
  // the server must answer with kError and close (framing is lost).
  const std::uint8_t bogus[8] = {32, 0, 0, 0, 'j', 'u', 'n', 'k'};
  client.send_raw(bogus, sizeof(bogus));
  client.close();

  // The error is visible server-side even though the client left.
  for (int i = 0; i < 200 && frontend.counters().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(frontend.counters().protocol_errors, 1u);

  // A second, well-formed client is unaffected by the first one's abuse.
  FrontendClient good("127.0.0.1", frontend.port());
  WireRequest req;
  req.id = 5;
  req.tenant = "t";
  req.channels = 3;
  req.height = 16;
  req.width = 16;
  util::Rng rng(7);
  const core::Tensor image = random_image(rng);
  req.pixels.assign(image.data(), image.data() + image.numel());
  good.send(req);
  const WireResponse res = good.recv();
  EXPECT_EQ(res.id, 5u);
  EXPECT_EQ(res.status, cluster::ResponseStatus::kOk) << res.message;

  frontend.stop();
  cluster.shutdown();
}

TEST(SocketFrontend, ShedRequestSurfacesAsShedStatusNotHang) {
  // One throttled, depth-1 shard: a pipelined burst from one client must
  // come back as a mix of kOk and kShed — every request gets exactly one
  // response, nothing hangs.
  EngineCluster cluster(tiny_shards(1, std::chrono::milliseconds(100),
                                    /*max_queue_depth=*/1, /*max_batch=*/1));
  SocketFrontend frontend(cluster, FrontendConfig{});
  frontend.start();

  FrontendClient client("127.0.0.1", frontend.port());
  util::Rng rng(9);
  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) {
    WireRequest req;
    req.id = static_cast<std::uint64_t>(i);
    req.tenant = "tenant-burst";
    req.channels = 3;
    req.height = 16;
    req.width = 16;
    const core::Tensor image = random_image(rng);
    req.pixels.assign(image.data(), image.data() + image.numel());
    client.send(req);
  }
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const WireResponse res = client.recv();
    if (res.status == cluster::ResponseStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(res.status, cluster::ResponseStatus::kShed) << res.message;
      EXPECT_EQ(res.shard, cluster::kNoShardByte);
      EXPECT_FALSE(res.message.empty());
      ++shed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(ok + shed, kBurst);

  frontend.stop();
  cluster.shutdown();
}
