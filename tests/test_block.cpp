// BuildingBlock: residual semantics, option-A shortcut, gradients, and the
// block-equals-Euler-step property the paper builds on.
#include <gtest/gtest.h>

#include "core/block.hpp"
#include "core/init.hpp"
#include "util/rng.hpp"

using namespace odenet::core;
namespace ou = odenet::util;

namespace {
Tensor random_tensor(std::vector<int> shape, ou::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}
}  // namespace

TEST(Shortcut, IdentityWhenShapePreserved) {
  ou::Rng rng(1);
  Tensor x = random_tensor({1, 4, 6, 6}, rng);
  Tensor y = BuildingBlock::shortcut(x, 1, 4);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(Shortcut, Stride2Subsamples) {
  Tensor x({1, 1, 4, 4});
  for (int h = 0; h < 4; ++h)
    for (int w = 0; w < 4; ++w) x.at(0, 0, h, w) = static_cast<float>(h * 10 + w);
  Tensor y = BuildingBlock::shortcut(x, 2, 1);
  EXPECT_EQ(y.dim(2), 2);
  EXPECT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 0, 0, 1), 2.0f);
  EXPECT_EQ(y.at(0, 0, 1, 0), 20.0f);
  EXPECT_EQ(y.at(0, 0, 1, 1), 22.0f);
}

TEST(Shortcut, ChannelZeroPadding) {
  Tensor x = Tensor::full({1, 2, 4, 4}, 3.0f);
  Tensor y = BuildingBlock::shortcut(x, 2, 4);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(y.at(0, 0, 0, 0), 3.0f);
  EXPECT_EQ(y.at(0, 1, 1, 1), 3.0f);
  EXPECT_EQ(y.at(0, 2, 0, 0), 0.0f);  // padded channel
  EXPECT_EQ(y.at(0, 3, 1, 1), 0.0f);
}

TEST(Shortcut, BackwardIsAdjoint) {
  // <shortcut(x), g> == <x, shortcut_backward(g)> — adjoint identity.
  ou::Rng rng(2);
  Tensor x = random_tensor({2, 2, 4, 4}, rng);
  Tensor fx = BuildingBlock::shortcut(x, 2, 4);
  Tensor g = random_tensor(fx.shape(), rng);
  Tensor bg = BuildingBlock::shortcut_backward(g, x.shape(), 2);
  EXPECT_NEAR(fx.dot(g), x.dot(bg), 1e-3f);
}

TEST(Block, ForwardIsBranchPlusShortcut) {
  ou::Rng rng(3);
  BuildingBlock block({.in_channels = 3, .out_channels = 3, .stride = 1});
  init_block(block, rng);
  // Batch-stat BN in eval mode makes branch_forward deterministic.
  block.bn1().set_use_batch_stats_in_eval(true);
  block.bn2().set_use_batch_stats_in_eval(true);
  Tensor x = random_tensor({1, 3, 5, 5}, rng);
  Tensor branch = block.branch_forward(x, 0.0f);
  Tensor full = block.forward(x);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(full.data()[i], branch.data()[i] + x.data()[i], 1e-5f);
  }
}

TEST(Block, Stride2ChangesGeometry) {
  ou::Rng rng(4);
  BuildingBlock block({.in_channels = 4, .out_channels = 8, .stride = 2});
  init_block(block, rng);
  block.set_training(true);
  Tensor y = block.forward(random_tensor({2, 4, 8, 8}, rng));
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 4, 4}));
  Tensor gin = block.backward(random_tensor({2, 8, 4, 4}, rng));
  EXPECT_EQ(gin.shape(), (std::vector<int>{2, 4, 8, 8}));
}

TEST(Block, GradMatchesFiniteDifference) {
  ou::Rng rng(5);
  BuildingBlock block({.in_channels = 2, .out_channels = 2, .stride = 1});
  init_block(block, rng);
  block.set_training(true);
  Tensor x = random_tensor({1, 2, 4, 4}, rng);
  Tensor gout = random_tensor({1, 2, 4, 4}, rng);

  block.forward(x);
  Tensor gin = block.backward(gout);

  auto loss = [&](const Tensor& xx) { return block.forward(xx).dot(gout); };
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{13}, std::size_t{30}}) {
    Tensor xp = x;
    xp.data()[i] += eps;
    Tensor xm = x;
    xm.data()[i] -= eps;
    const float fd = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(gin.data()[i], fd, 8e-2f) << "index " << i;
  }
}

TEST(Block, WeightGradViaFiniteDifference) {
  ou::Rng rng(6);
  BuildingBlock block({.in_channels = 2, .out_channels = 2, .stride = 1});
  init_block(block, rng);
  block.set_training(true);
  Tensor x = random_tensor({1, 2, 4, 4}, rng);
  Tensor gout = random_tensor({1, 2, 4, 4}, rng);
  block.forward(x);
  block.backward(gout);

  auto& w = block.conv1().weight();
  const std::size_t idx = 5;
  const float analytic = w.grad.data()[idx];
  const float eps = 1e-3f;
  const float orig = w.value.data()[idx];
  w.value.data()[idx] = orig + eps;
  const float up = block.forward(x).dot(gout);
  w.value.data()[idx] = orig - eps;
  const float dn = block.forward(x).dot(gout);
  w.value.data()[idx] = orig;
  EXPECT_NEAR(analytic, (up - dn) / (2 * eps), 8e-2f);
}

TEST(Block, TimeChannelParamCount) {
  BuildingBlock ode({.in_channels = 16, .out_channels = 16, .stride = 1,
                     .time_channel = true});
  // 2 convs of 16x17x3x3 + 2 BN of 2*16 = 4896 + 64 = 4960 params
  // = 19.84 kB: the Table-2 layer1 row.
  EXPECT_EQ(ode.param_count(), 4960u);

  BuildingBlock plain({.in_channels = 16, .out_channels = 16, .stride = 1});
  EXPECT_EQ(plain.param_count(), 4672u);  // 18.688 kB
}

TEST(Block, TransitionParamCountsMatchTable2) {
  BuildingBlock l21({.in_channels = 16, .out_channels = 32, .stride = 2});
  EXPECT_EQ(l21.param_count() * 4, 55808u);  // 55.808 kB (layer2_1)
  BuildingBlock l31({.in_channels = 32, .out_channels = 64, .stride = 2});
  EXPECT_EQ(l31.param_count() * 4, 222208u);  // 222.208 kB (layer3_1)
}

TEST(Block, OdeCapableMustBeStride1) {
  EXPECT_THROW(BuildingBlock({.in_channels = 4,
                              .out_channels = 8,
                              .stride = 2,
                              .time_channel = true}),
               odenet::Error);
}

TEST(Block, MacCountExcludesTimeChannel) {
  BuildingBlock ode({.in_channels = 64, .out_channels = 64, .stride = 1,
                     .time_channel = true});
  // Hardware folds the time plane: 2 x 8*8*64*64*9.
  EXPECT_EQ(ode.mac_count(8, 8), 2u * 2359296u);
}

TEST(Block, ParamsListCompleteAndDistinct) {
  BuildingBlock b({.in_channels = 2, .out_channels = 2, .stride = 1});
  auto ps = b.params();
  // conv1.w, bn1.gamma, bn1.beta, conv2.w, bn2.gamma, bn2.beta
  EXPECT_EQ(ps.size(), 6u);
  for (std::size_t i = 0; i < ps.size(); ++i)
    for (std::size_t j = i + 1; j < ps.size(); ++j)
      EXPECT_NE(ps[i], ps[j]);
}
