// Conv2d: forward vs a naive reference, finite-difference gradient checks,
// and the concat-time-channel behaviour the parameter accounting relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/conv2d.hpp"
#include "core/init.hpp"
#include "util/rng.hpp"

using odenet::core::Conv2d;
using odenet::core::Conv2dConfig;
using odenet::core::Tensor;
namespace ou = odenet::util;

namespace {

Tensor random_tensor(std::vector<int> shape, ou::Rng& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, scale));
  }
  return t;
}

/// Direct reference convolution (independent implementation).
Tensor ref_conv(const Tensor& x, const Tensor& w, int stride, int pad) {
  const int n = x.dim(0), ci = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int co = w.dim(0), k = w.dim(2);
  const int ho = (h + 2 * pad - k) / stride + 1;
  const int wo = (wd + 2 * pad - k) / stride + 1;
  Tensor out({n, co, ho, wo});
  for (int ni = 0; ni < n; ++ni)
    for (int o = 0; o < co; ++o)
      for (int oh = 0; oh < ho; ++oh)
        for (int ow = 0; ow < wo; ++ow) {
          double acc = 0;
          for (int c = 0; c < ci; ++c)
            for (int kh = 0; kh < k; ++kh)
              for (int kw = 0; kw < k; ++kw) {
                const int ih = oh * stride - pad + kh;
                const int iw = ow * stride - pad + kw;
                if (ih < 0 || ih >= h || iw < 0 || iw >= wd) continue;
                acc += static_cast<double>(x.at(ni, c, ih, iw)) *
                       w.at(o, c, kh, kw);
              }
          out.at(ni, o, oh, ow) = static_cast<float>(acc);
        }
  return out;
}

}  // namespace

struct ConvCase {
  int n, cin, cout, size, stride;
};

class ConvForward : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvForward, MatchesReference) {
  const auto p = GetParam();
  ou::Rng rng(42);
  Conv2d conv({.in_channels = p.cin,
               .out_channels = p.cout,
               .kernel = 3,
               .stride = p.stride,
               .pad = 1});
  odenet::core::init_conv(conv, rng);
  Tensor x = random_tensor({p.n, p.cin, p.size, p.size}, rng);
  Tensor got = conv.forward(x);
  Tensor want = ref_conv(x, conv.weight().value, p.stride, 1);
  ASSERT_TRUE(got.same_shape(want)) << got.shape_str();
  for (std::size_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-4f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvForward,
    ::testing::Values(ConvCase{1, 1, 1, 5, 1}, ConvCase{1, 3, 4, 8, 1},
                      ConvCase{2, 4, 4, 6, 1}, ConvCase{1, 3, 8, 8, 2},
                      ConvCase{2, 8, 16, 8, 2}, ConvCase{3, 2, 5, 7, 1}));

TEST(Conv2d, OutExtentFormula) {
  EXPECT_EQ(Conv2d::out_extent(32, 3, 1, 1), 32);
  EXPECT_EQ(Conv2d::out_extent(32, 3, 2, 1), 16);
  EXPECT_EQ(Conv2d::out_extent(8, 3, 2, 1), 4);
  EXPECT_THROW(Conv2d::out_extent(1, 3, 1, 0), odenet::Error);
}

TEST(Conv2d, MacCountMatchesPaperLayer3_2) {
  // 64ch -> 64ch over 8x8: 8*8*64*64*9 = 2,359,296 MACs per conv.
  Conv2d conv({.in_channels = 64, .out_channels = 64});
  EXPECT_EQ(conv.mac_count(8, 8), 2359296u);
}

TEST(Conv2d, WeightGradMatchesFiniteDifference) {
  ou::Rng rng(1);
  Conv2d conv({.in_channels = 2, .out_channels = 3});
  odenet::core::init_conv(conv, rng);
  conv.set_training(true);
  Tensor x = random_tensor({1, 2, 4, 4}, rng);
  Tensor gout = random_tensor({1, 3, 4, 4}, rng);

  conv.forward(x);
  conv.backward(gout);
  Tensor analytic = conv.weight().grad;

  // L(w) = sum(forward(x) * gout); dL/dw_i checked by central differences.
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{25},
                        analytic.numel() - 1}) {
    float& wi = conv.weight().value.data()[i];
    const float orig = wi;
    wi = orig + eps;
    const float up = conv.forward(x).dot(gout);
    wi = orig - eps;
    const float dn = conv.forward(x).dot(gout);
    wi = orig;
    const float fd = (up - dn) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], fd, 2e-2f) << "weight index " << i;
  }
}

TEST(Conv2d, InputGradMatchesFiniteDifference) {
  ou::Rng rng(2);
  Conv2d conv({.in_channels = 2, .out_channels = 2, .stride = 2});
  odenet::core::init_conv(conv, rng);
  conv.set_training(true);
  Tensor x = random_tensor({1, 2, 6, 6}, rng);
  Tensor gout = random_tensor({1, 2, 3, 3}, rng);

  conv.forward(x);
  Tensor gin = conv.backward(gout);

  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{17}, std::size_t{40}}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = conv.forward(x).dot(gout);
    x.data()[i] = orig - eps;
    const float dn = conv.forward(x).dot(gout);
    x.data()[i] = orig;
    EXPECT_NEAR(gin.data()[i], (up - dn) / (2 * eps), 2e-2f) << "input " << i;
  }
}

TEST(Conv2d, GradAccumulatesAcrossCalls) {
  ou::Rng rng(3);
  Conv2d conv({.in_channels = 1, .out_channels = 1});
  odenet::core::init_conv(conv, rng);
  conv.set_training(true);
  Tensor x = random_tensor({1, 1, 4, 4}, rng);
  Tensor g = random_tensor({1, 1, 4, 4}, rng);

  conv.forward(x);
  conv.backward(g);
  Tensor once = conv.weight().grad;
  conv.forward(x);
  conv.backward(g);
  for (std::size_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(conv.weight().grad.data()[i], 2 * once.data()[i], 1e-4f);
  }
  conv.zero_grads();
  EXPECT_EQ(conv.weight().grad.abs_max(), 0.0f);
}

TEST(Conv2dTime, WeightShapeHasExtraPlane) {
  Conv2d conv({.in_channels = 16, .out_channels = 16, .time_channel = true});
  EXPECT_EQ(conv.weight().value.shape(),
            (std::vector<int>{16, 17, 3, 3}));
  // Parameter count matches the Table-2 accounting for one ODE conv.
  EXPECT_EQ(conv.weight().value.numel(), 16u * 17 * 9);
}

TEST(Conv2dTime, TimeContributionIsAffine) {
  // f(x, t) - f(x, 0) must be exactly linear in t.
  ou::Rng rng(4);
  Conv2d conv({.in_channels = 2, .out_channels = 2, .time_channel = true});
  odenet::core::init_conv(conv, rng);
  Tensor x = random_tensor({1, 2, 5, 5}, rng);

  conv.set_time(0.0f);
  Tensor y0 = conv.forward(x);
  conv.set_time(1.0f);
  Tensor y1 = conv.forward(x);
  conv.set_time(2.0f);
  Tensor y2 = conv.forward(x);

  for (std::size_t i = 0; i < y0.numel(); ++i) {
    const float d1 = y1.data()[i] - y0.data()[i];
    const float d2 = y2.data()[i] - y0.data()[i];
    EXPECT_NEAR(d2, 2 * d1, 1e-4f) << "not affine in t at " << i;
  }
}

TEST(Conv2dTime, ZeroTimeStillUsesPadding) {
  // With t=0 the time plane is all zeros -> output equals plain conv with
  // the data sub-kernel.
  ou::Rng rng(5);
  Conv2d tc({.in_channels = 2, .out_channels = 2, .time_channel = true});
  odenet::core::init_conv(tc, rng);
  Conv2d plain({.in_channels = 2, .out_channels = 2});
  // Copy the data-channel part of the weights.
  for (int o = 0; o < 2; ++o)
    for (int c = 0; c < 2; ++c)
      for (int kh = 0; kh < 3; ++kh)
        for (int kw = 0; kw < 3; ++kw)
          plain.weight().value.at(o, c, kh, kw) =
              tc.weight().value.at(o, c, kh, kw);

  Tensor x = random_tensor({1, 2, 4, 4}, rng);
  tc.set_time(0.0f);
  Tensor a = tc.forward(x);
  Tensor b = plain.forward(x);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-5f);
  }
}

TEST(Conv2dTime, BackwardStripsTimePlaneGrad) {
  ou::Rng rng(6);
  Conv2d conv({.in_channels = 3, .out_channels = 2, .time_channel = true});
  odenet::core::init_conv(conv, rng);
  conv.set_training(true);
  conv.set_time(0.5f);
  Tensor x = random_tensor({2, 3, 4, 4}, rng);
  conv.forward(x);
  Tensor gin = conv.backward(random_tensor({2, 2, 4, 4}, rng));
  // Gradient w.r.t. the data input only: same shape as x.
  EXPECT_TRUE(gin.same_shape(x));
}

TEST(Conv2dTime, TimeWeightsReceiveGradient) {
  ou::Rng rng(7);
  Conv2d conv({.in_channels = 1, .out_channels = 1, .time_channel = true});
  odenet::core::init_conv(conv, rng);
  conv.set_training(true);
  conv.set_time(1.0f);  // nonzero so the time plane contributes
  Tensor x = random_tensor({1, 1, 4, 4}, rng);
  conv.forward(x);
  conv.backward(Tensor::full({1, 1, 4, 4}, 1.0f));
  // The time-plane weights (input plane index 1) must have nonzero grads.
  float tmax = 0;
  for (int kh = 0; kh < 3; ++kh)
    for (int kw = 0; kw < 3; ++kw)
      tmax = std::max(tmax, std::fabs(conv.weight().grad.at(0, 1, kh, kw)));
  EXPECT_GT(tmax, 0.0f);
}

TEST(Conv2d, RejectsBadInput) {
  Conv2d conv({.in_channels = 3, .out_channels = 4});
  EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8})), odenet::Error);
  EXPECT_THROW(conv.forward(Tensor({3, 8, 8})), odenet::Error);
  EXPECT_THROW(conv.backward(Tensor({1, 4, 8, 8})), odenet::Error);
}
