// Direct unit tests for the priority/deadline-aware micro-batching queue
// (runtime::BatchQueue): the dynamic-batching flush rule, close semantics,
// priority ordering, expired-deadline rejection, bounded-depth admission
// control (QueueFull rejection and higher-priority eviction), and the
// preemptive flush window.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/batch_queue.hpp"
#include "util/stopwatch.hpp"

using namespace odenet;
using runtime::BatchQueue;
using runtime::Clock;
using runtime::DeadlineExceeded;
using runtime::PendingRequest;
using runtime::PushOutcome;
using runtime::Priority;
using runtime::QueueFull;
using runtime::QueueLimits;

namespace {

/// A request tagged through its 1-element image tensor so pop order is
/// observable.
PendingRequest make_request(float tag,
                            Priority priority = Priority::kNormal) {
  PendingRequest req;
  req.image = core::Tensor({1});
  req.image.data()[0] = tag;
  req.cls.priority = priority;
  return req;
}

float tag_of(const PendingRequest& req) { return req.image.data()[0]; }

QueueLimits bounded(std::size_t depth) {
  QueueLimits limits;
  limits.max_queue_depth = depth;
  return limits;
}

}  // namespace

TEST(BatchQueue, LoneRequestFlushesOnDeadlineNotBatchSize) {
  BatchQueue queue(8, std::chrono::microseconds(20000));
  ASSERT_EQ(queue.push(make_request(1.0f)), PushOutcome::kAccepted);

  util::Stopwatch watch;
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  const double waited = watch.seconds();

  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
  // The pop had to sit out the flush deadline (with a little scheduling
  // slack), not return instantly and not wait for a full batch.
  EXPECT_GE(waited, 0.015);
  EXPECT_LT(waited, 5.0);
}

TEST(BatchQueue, BurstFillsMaxBatchImmediately) {
  BatchQueue queue(4, std::chrono::seconds(30));  // deadline never fires
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(queue.push(make_request(static_cast<float>(i))), PushOutcome::kAccepted);
  }

  util::Stopwatch watch;
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_EQ(batch.size(), 4u);
  // Both batches were full, so neither waited on the 30 s deadline.
  EXPECT_LT(watch.seconds(), 5.0);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BatchQueue, CloseWhileWorkerWaitsDrainsWithoutDeadlineWait) {
  BatchQueue queue(64, std::chrono::seconds(30));
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.push(make_request(static_cast<float>(i))), PushOutcome::kAccepted);
  }

  // The popper parks on the 30 s flush deadline (3 < 64); close() must
  // flush immediately.
  std::vector<PendingRequest> batch;
  bool popped = false;
  bool exited = false;
  std::thread worker([&] {
    popped = queue.pop_batch(batch);
    std::vector<PendingRequest> rest;
    exited = !queue.pop_batch(rest);  // closed and drained
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  util::Stopwatch watch;
  queue.close();
  worker.join();
  EXPECT_LT(watch.seconds(), 5.0);

  EXPECT_TRUE(popped);
  EXPECT_TRUE(exited);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(queue.push(make_request(9.0f)), PushOutcome::kClosed);  // closed refuses new work
}

TEST(BatchQueue, PopsHighestPriorityFirstFifoWithinClass) {
  BatchQueue queue(2, std::chrono::seconds(30));
  ASSERT_EQ(queue.push(make_request(10.0f, Priority::kLow)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(11.0f, Priority::kLow)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(20.0f, Priority::kHigh)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(30.0f, Priority::kNormal)), PushOutcome::kAccepted);
  queue.close();  // flush everything without the deadline wait

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 20.0f);  // high first
  EXPECT_FLOAT_EQ(tag_of(batch[1]), 30.0f);  // then normal

  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 10.0f);  // low, FIFO within class
  EXPECT_FLOAT_EQ(tag_of(batch[1]), 11.0f);

  EXPECT_FALSE(queue.pop_batch(batch));
}

// Anti-starvation aging: a low request older than k x max_delay climbs one
// class per pop scan, so it overtakes high-priority arrivals that land
// after its promotion instead of waiting forever behind them.
TEST(BatchQueue, AgedRequestIsPromotedPastLaterHighArrivals) {
  BatchQueue queue(1, std::chrono::microseconds(1000),
                   /*promote_after_factor=*/1);
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kLow)), PushOutcome::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // > 1 ms
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kHigh)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(3.0f, Priority::kHigh)), PushOutcome::kAccepted);

  std::vector<PendingRequest> batch;
  // Pop 1: the scan lifts the aged low request into the normal lane (one
  // class per scan); the batch still takes the queued high work first.
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);
  // Pop 2: second scan lifts it normal -> high, at the TAIL of the high
  // lane — behind 3.0, which was already waiting.
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 3.0f);
  // New high traffic now queues BEHIND the promoted request.
  ASSERT_EQ(queue.push(make_request(4.0f, Priority::kHigh)), PushOutcome::kAccepted);
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
  // Promotion re-orders scheduling but never re-labels the request.
  EXPECT_EQ(batch[0].cls.priority, Priority::kLow);
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 4.0f);

  EXPECT_EQ(queue.promotion_total(), 2u);  // low->normal, normal->high
  EXPECT_EQ(queue.timeout_total(), 0u);
}

TEST(BatchQueue, PromotionDisabledByDefault) {
  BatchQueue queue(1, std::chrono::microseconds(500));
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kLow)), PushOutcome::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kHigh)), PushOutcome::kAccepted);

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);  // strict priority, no aging
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
  EXPECT_EQ(queue.promotion_total(), 0u);
}

TEST(BatchQueue, ExpiredDeadlineIsRejectedNotServed) {
  BatchQueue queue(4, std::chrono::microseconds(30000));
  PendingRequest doomed = make_request(1.0f, Priority::kLow);
  doomed.cls.deadline = Clock::now() + std::chrono::microseconds(500);
  std::future<runtime::InferenceResult> doomed_future =
      doomed.promise.get_future();
  ASSERT_EQ(queue.push(std::move(doomed)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(2.0f)), PushOutcome::kAccepted);  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  // Only the live request rides; the expired one never occupies a slot.
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);
  EXPECT_THROW(doomed_future.get(), DeadlineExceeded);
  EXPECT_EQ(queue.timeout_count(Priority::kLow), 1u);
  EXPECT_EQ(queue.timeout_count(Priority::kNormal), 0u);
  EXPECT_EQ(queue.timeout_total(), 1u);
}

TEST(BatchQueue, DeadlinePushedWhileWorkerParkedIsStillRejectedPromptly) {
  // The worker parks on the 30 s flush deadline with only a deadline-less
  // request queued; a later push with a short deadline must re-arm the
  // wait (not sleep until the stale wake-up) so the rejection is prompt.
  BatchQueue queue(64, std::chrono::seconds(30));
  ASSERT_EQ(queue.push(make_request(1.0f)), PushOutcome::kAccepted);  // no deadline

  std::vector<PendingRequest> served;
  std::thread worker([&] {
    std::vector<PendingRequest> batch;
    while (queue.pop_batch(batch)) {
      for (auto& req : batch) served.push_back(std::move(req));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it park

  PendingRequest doomed = make_request(2.0f);
  doomed.cls.deadline = Clock::now() + std::chrono::milliseconds(2);
  std::future<runtime::InferenceResult> doomed_future =
      doomed.promise.get_future();
  ASSERT_EQ(queue.push(std::move(doomed)), PushOutcome::kAccepted);

  util::Stopwatch watch;
  EXPECT_THROW(doomed_future.get(), DeadlineExceeded);
  EXPECT_LT(watch.seconds(), 5.0);  // not the 30 s flush deadline
  EXPECT_EQ(queue.timeout_total(), 1u);
  queue.close();
  worker.join();
  // The deadline-less request survived the reap and drained on close.
  ASSERT_EQ(served.size(), 1u);
  EXPECT_FLOAT_EQ(tag_of(served[0]), 1.0f);
}

TEST(BatchQueue, WorkerWakesEarlyToRejectExpiringRequest) {
  // Flush deadline far out; the request's own 2 ms deadline must wake the
  // waiting worker, fail the promise promptly, and leave it waiting.
  BatchQueue queue(64, std::chrono::seconds(30));
  PendingRequest doomed = make_request(1.0f);
  doomed.cls.deadline = Clock::now() + std::chrono::milliseconds(2);
  std::future<runtime::InferenceResult> doomed_future =
      doomed.promise.get_future();
  ASSERT_EQ(queue.push(std::move(doomed)), PushOutcome::kAccepted);

  std::vector<PendingRequest> batch;
  std::thread worker([&] { EXPECT_FALSE(queue.pop_batch(batch)); });
  util::Stopwatch watch;
  // The promise resolves as soon as the worker reaps — well before the
  // 30 s flush deadline.
  EXPECT_THROW(doomed_future.get(), DeadlineExceeded);
  EXPECT_LT(watch.seconds(), 5.0);
  EXPECT_EQ(queue.timeout_total(), 1u);
  EXPECT_EQ(queue.size(), 0u);
  queue.close();  // lets the worker exit
  worker.join();
}

// ---- admission control / load shedding --------------------------------

TEST(BatchQueue, DepthBoundRejectsArrivalFailFast) {
  BatchQueue queue(8, std::chrono::seconds(30), 0, bounded(2));
  ASSERT_EQ(queue.push(make_request(1.0f)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(2.0f)), PushOutcome::kAccepted);

  PendingRequest doomed = make_request(3.0f);
  auto doomed_future = doomed.promise.get_future();
  util::Stopwatch watch;
  EXPECT_EQ(queue.push(std::move(doomed)), PushOutcome::kRejected);
  // Fail-fast: the future already carries QueueFull, no waiting involved.
  EXPECT_THROW(doomed_future.get(), QueueFull);
  EXPECT_LT(watch.seconds(), 5.0);

  EXPECT_EQ(queue.size(), 2u);  // the waiters are untouched
  EXPECT_EQ(queue.rejected_count(Priority::kNormal), 1u);
  EXPECT_EQ(queue.rejected_total(), 1u);
  EXPECT_EQ(queue.evicted_total(), 0u);
  EXPECT_EQ(queue.timeout_total(), 0u);

  // Shedding is about ARRIVALS, not queued work: both waiters drain fine.
  std::vector<PendingRequest> batch;
  queue.close();
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchQueue, HighPriorityEvictsOldestLowInsteadOfBeingRejected) {
  BatchQueue queue(8, std::chrono::seconds(30), 0, bounded(2));
  PendingRequest victim = make_request(1.0f, Priority::kLow);
  auto victim_future = victim.promise.get_future();
  ASSERT_EQ(queue.push(std::move(victim)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kLow)),
            PushOutcome::kAccepted);

  // The queue is full, but a high arrival must never be rejected while a
  // lower class has evictable waiters: the OLDEST low request is shed.
  ASSERT_EQ(queue.push(make_request(3.0f, Priority::kHigh)),
            PushOutcome::kAccepted);
  EXPECT_THROW(victim_future.get(), QueueFull);
  EXPECT_EQ(queue.size(), 2u);  // still at the bound
  EXPECT_EQ(queue.evicted_count(Priority::kLow), 1u);
  EXPECT_EQ(queue.evicted_total(), 1u);
  EXPECT_EQ(queue.rejected_total(), 0u);

  std::vector<PendingRequest> batch;
  queue.close();
  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 3.0f);  // the admitted high arrival
  EXPECT_FLOAT_EQ(tag_of(batch[1]), 2.0f);  // the surviving low waiter
}

TEST(BatchQueue, EvictionTakesTheLowestClassFirst) {
  BatchQueue queue(8, std::chrono::seconds(30), 0, bounded(3));
  PendingRequest low = make_request(1.0f, Priority::kLow);
  auto low_future = low.promise.get_future();
  ASSERT_EQ(queue.push(std::move(low)), PushOutcome::kAccepted);
  PendingRequest normal = make_request(2.0f, Priority::kNormal);
  auto normal_future = normal.promise.get_future();
  ASSERT_EQ(queue.push(std::move(normal)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(3.0f, Priority::kHigh)),
            PushOutcome::kAccepted);

  // A high arrival evicts from the LOWEST class with waiters: low first.
  ASSERT_EQ(queue.push(make_request(4.0f, Priority::kHigh)),
            PushOutcome::kAccepted);
  EXPECT_THROW(low_future.get(), QueueFull);
  EXPECT_EQ(queue.evicted_count(Priority::kLow), 1u);

  // With the low lane empty, the next high arrival evicts the normal.
  ASSERT_EQ(queue.push(make_request(5.0f, Priority::kHigh)),
            PushOutcome::kAccepted);
  EXPECT_THROW(normal_future.get(), QueueFull);
  EXPECT_EQ(queue.evicted_count(Priority::kNormal), 1u);

  // Only high waiters remain: a further high arrival has nothing to
  // evict (never evicts its own class) and is itself rejected.
  PendingRequest doomed = make_request(6.0f, Priority::kHigh);
  auto doomed_future = doomed.promise.get_future();
  EXPECT_EQ(queue.push(std::move(doomed)), PushOutcome::kRejected);
  EXPECT_THROW(doomed_future.get(), QueueFull);
  EXPECT_EQ(queue.rejected_count(Priority::kHigh), 1u);
  EXPECT_EQ(queue.evicted_total(), 2u);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(BatchQueue, LowArrivalNeverEvictsAndEvictionCanBeDisabled) {
  // A low arrival has no lower class to shed: rejected outright.
  BatchQueue queue(8, std::chrono::seconds(30), 0, bounded(1));
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kLow)),
            PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(make_request(2.0f, Priority::kLow)),
            PushOutcome::kRejected);
  EXPECT_EQ(queue.rejected_count(Priority::kLow), 1u);

  // evict_lower = false: even high arrivals shed fail-fast.
  QueueLimits no_evict = bounded(1);
  no_evict.evict_lower = false;
  BatchQueue strict(8, std::chrono::seconds(30), 0, no_evict);
  ASSERT_EQ(strict.push(make_request(1.0f, Priority::kLow)),
            PushOutcome::kAccepted);
  EXPECT_EQ(strict.push(make_request(2.0f, Priority::kHigh)),
            PushOutcome::kRejected);
  EXPECT_EQ(strict.rejected_count(Priority::kHigh), 1u);
  EXPECT_EQ(strict.evicted_total(), 0u);
  EXPECT_EQ(strict.size(), 1u);
}

TEST(BatchQueue, NonEvictableWaiterIsSkippedByEviction) {
  BatchQueue queue(8, std::chrono::seconds(30), 0, bounded(2));
  PendingRequest pinned = make_request(1.0f, Priority::kLow);
  pinned.cls.evictable = false;
  ASSERT_EQ(queue.push(std::move(pinned)), PushOutcome::kAccepted);
  PendingRequest soft = make_request(2.0f, Priority::kLow);
  auto soft_future = soft.promise.get_future();
  ASSERT_EQ(queue.push(std::move(soft)), PushOutcome::kAccepted);

  // The older waiter is non-evictable: the NEWER evictable one is shed.
  ASSERT_EQ(queue.push(make_request(3.0f, Priority::kHigh)),
            PushOutcome::kAccepted);
  EXPECT_THROW(soft_future.get(), QueueFull);

  // Only the non-evictable low remains below high: the next high arrival
  // finds nothing to evict and is rejected.
  EXPECT_EQ(queue.push(make_request(4.0f, Priority::kHigh)),
            PushOutcome::kRejected);
  EXPECT_EQ(queue.evicted_count(Priority::kLow), 1u);
  EXPECT_EQ(queue.rejected_count(Priority::kHigh), 1u);
}

TEST(BatchQueue, PerPriorityBudgetShedsClassWithoutEviction) {
  QueueLimits limits;  // no total bound — only the low-class budget
  limits.per_priority[static_cast<std::size_t>(Priority::kLow)] = 2;
  BatchQueue queue(8, std::chrono::seconds(30), 0, limits);
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kLow)),
            PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kLow)),
            PushOutcome::kAccepted);

  PendingRequest doomed = make_request(3.0f, Priority::kLow);
  auto doomed_future = doomed.promise.get_future();
  EXPECT_EQ(queue.push(std::move(doomed)), PushOutcome::kRejected);
  EXPECT_THROW(doomed_future.get(), QueueFull);
  EXPECT_EQ(queue.rejected_count(Priority::kLow), 1u);

  // Other classes are not budgeted and flow freely past the low cap.
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(queue.push(make_request(10.0f + i, Priority::kNormal)),
              PushOutcome::kAccepted);
  }
  EXPECT_EQ(queue.size(), 7u);
  EXPECT_EQ(queue.evicted_total(), 0u);
}

TEST(BatchQueue, ExpiredRequestsDoNotHoldSlotsAgainstArrivals) {
  BatchQueue queue(8, std::chrono::seconds(30), 0, bounded(1));
  PendingRequest stale = make_request(1.0f);
  stale.cls.deadline = Clock::now() + std::chrono::milliseconds(2);
  auto stale_future = stale.promise.get_future();
  ASSERT_EQ(queue.push(std::move(stale)), PushOutcome::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // The queue is "full" of dead work only: push must reap, then admit.
  ASSERT_EQ(queue.push(make_request(2.0f)), PushOutcome::kAccepted);
  EXPECT_THROW(stale_future.get(), DeadlineExceeded);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.timeout_total(), 1u);
  EXPECT_EQ(queue.rejected_total(), 0u);
}

// ---- preemption-aware batching ----------------------------------------

TEST(BatchQueue, HighArrivalShrinksFlushWindowOfParkedWorker) {
  // Flush window 30 s (never fires in this test); preemptive window 2 ms.
  BatchQueue queue(64, std::chrono::seconds(30), 0, {},
                   std::chrono::milliseconds(2));
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kLow)),
            PushOutcome::kAccepted);

  std::vector<PendingRequest> batch;
  std::thread worker([&] { ASSERT_TRUE(queue.pop_batch(batch)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // park it

  util::Stopwatch watch;
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kHigh)),
            PushOutcome::kAccepted);
  worker.join();
  // The parked worker woke for the preemptive window, not the 30 s flush.
  EXPECT_LT(watch.seconds(), 5.0);

  // No starvation: the preempted batch back-fills with the low waiter.
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);  // high first
  EXPECT_FLOAT_EQ(tag_of(batch[1]), 1.0f);  // low rides along
}

TEST(BatchQueue, PreemptiveWindowAppliesOnlyWhileHighWorkWaits) {
  // Preemption on, but only normal/low work queued: the batch must still
  // sit out the full flush window (preemption never rushes bulk traffic).
  BatchQueue queue(64, std::chrono::microseconds(20000), 0, {},
                   std::chrono::microseconds(500));
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kLow)),
            PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kNormal)),
            PushOutcome::kAccepted);

  util::Stopwatch watch;
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_GE(watch.seconds(), 0.015);  // waited ~max_delay, not 500 us
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchQueue, LoneHighRequestFlushesAtPreemptiveWindow) {
  BatchQueue queue(64, std::chrono::seconds(30), 0, {},
                   std::chrono::milliseconds(1));
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kHigh)),
            PushOutcome::kAccepted);
  util::Stopwatch watch;
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_LT(watch.seconds(), 5.0);  // not the 30 s window
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
}

// Regression for the flush-timer/promotion divergence: promotion appends
// the OLDER request at the TAIL of the upper lane, but the flush-deadline
// scan used to look only at lane FRONTS — so once a promoted request sat
// behind a younger waiter, the flush timer was computed off the younger
// enqueue time and the promoted request silently waited up to a full
// extra max_delay. The scan must cover whole lanes.
TEST(BatchQueue, PromotedRequestKeepsDrivingFlushTimer) {
  // Large max_batch so only the flush deadline can release a batch.
  BatchQueue queue(64, std::chrono::milliseconds(200),
                   /*promote_after_factor=*/1);
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kLow)),
            PushOutcome::kAccepted);
  // Age it past promote_after_factor x max_delay.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  // The aged low request is now ~250 ms old; a brand-new normal request
  // arrives. Promotion lifts the old request to the normal lane TAIL —
  // behind the younger front. Pre-fix, the flush deadline keyed off the
  // younger front (~0 ms old) and this pop waited the full 200 ms window;
  // post-fix the 250 ms-old promoted request makes the deadline already
  // due and the pop returns immediately with both requests.
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kNormal)),
            PushOutcome::kAccepted);
  util::Stopwatch watch;
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  const double waited = watch.seconds();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);  // normal-lane front first
  EXPECT_FLOAT_EQ(tag_of(batch[1]), 1.0f);  // the promoted request rides
  EXPECT_EQ(queue.promotion_total(), 1u);
  // Well under the 200 ms flush window (generous CI slack): the promoted
  // request's age drove the deadline.
  EXPECT_LT(waited, 0.1);
}

// ---- try_push (the cluster spill probe) --------------------------------

TEST(BatchQueue, TryPushRejectLeavesRequestIntactForSpill) {
  BatchQueue queue(8, std::chrono::seconds(30), 0, bounded(1));
  ASSERT_EQ(queue.push(make_request(1.0f)), PushOutcome::kAccepted);

  // The probe bounces off the full queue WITHOUT failing the promise —
  // the caller keeps the request and may offer it to another queue.
  PendingRequest probe = make_request(2.0f);
  auto probe_future = probe.promise.get_future();
  EXPECT_EQ(queue.try_push(probe), PushOutcome::kRejected);
  EXPECT_FLOAT_EQ(tag_of(probe), 2.0f);  // image still owned by the caller
  EXPECT_EQ(probe_future.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);  // promise untouched
  EXPECT_EQ(queue.rejected_total(), 0u);   // a probe is not a shed

  // The same request then lands in a second queue normally.
  BatchQueue other(8, std::chrono::seconds(30), 0, bounded(1));
  EXPECT_EQ(other.try_push(probe), PushOutcome::kAccepted);
  other.close();
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(other.pop_batch(batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);
}

TEST(BatchQueue, TryPushStillAdmitsByEvictingLowerClass) {
  // The probe shares submit()'s admission control: a high-priority
  // arrival on a full queue still evicts the oldest evictable lower-class
  // waiter instead of bouncing.
  BatchQueue queue(8, std::chrono::seconds(30), 0, bounded(1));
  PendingRequest victim = make_request(1.0f, Priority::kLow);
  auto victim_future = victim.promise.get_future();
  ASSERT_EQ(queue.push(std::move(victim)), PushOutcome::kAccepted);

  PendingRequest urgent = make_request(2.0f, Priority::kHigh);
  EXPECT_EQ(queue.try_push(urgent), PushOutcome::kAccepted);
  EXPECT_THROW(victim_future.get(), QueueFull);
  EXPECT_EQ(queue.evicted_total(), 1u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BatchQueue, PreemptiveFlushDoesNotStarveAgingLowTraffic) {
  // Preemption interacting with PR 4 aging: sustained high arrivals keep
  // shrinking the window, but a low request older than k x max_delay
  // still climbs lanes and eventually rides ahead of FUTURE high work.
  BatchQueue queue(1, std::chrono::microseconds(1000),
                   /*promote_after_factor=*/1, {},
                   std::chrono::microseconds(100));
  ASSERT_EQ(queue.push(make_request(1.0f, Priority::kLow)),
            PushOutcome::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // age it
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kHigh)),
            PushOutcome::kAccepted);

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));  // scan 1: low -> normal
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);
  ASSERT_TRUE(queue.pop_batch(batch));  // scan 2: normal -> high, then pop
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
  EXPECT_EQ(batch[0].cls.priority, Priority::kLow);  // never re-labeled
  EXPECT_EQ(queue.promotion_total(), 2u);
}

// ---- per-tenant quotas + weighted-fair pick ----------------------------

namespace {

PendingRequest tenant_request(runtime::TenantId tenant, float tag,
                              Priority priority = Priority::kNormal) {
  PendingRequest req = make_request(tag, priority);
  req.cls.tenant = tenant;
  return req;
}

}  // namespace

TEST(BatchQueue, TenantQuotaShedsAtAcceptAndFreesOnPop) {
  runtime::TenantTable tenants;
  const auto a = tenants.configure("a", {1.0, 2});
  BatchQueue queue(1, std::chrono::microseconds(100), 0, {}, {}, &tenants);

  ASSERT_EQ(queue.push(tenant_request(a, 1.0f)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(tenant_request(a, 2.0f)), PushOutcome::kAccepted);
  EXPECT_EQ(tenants.queued(a), 2u);

  // Third arrival is at the quota: failed with QueueFull and counted both
  // as a queue rejection and on the tenant's ledger.
  PendingRequest over = tenant_request(a, 3.0f);
  auto over_future = over.promise.get_future();
  EXPECT_EQ(queue.push(std::move(over)), PushOutcome::kRejected);
  EXPECT_THROW(over_future.get(), QueueFull);
  EXPECT_EQ(queue.rejected_total(), 1u);
  EXPECT_EQ(tenants.quota_rejected_total(), 1u);

  // Popping releases the charge: the tenant can queue again.
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_EQ(tenants.queued(a), 1u);
  EXPECT_EQ(queue.push(tenant_request(a, 4.0f)), PushOutcome::kAccepted);
}

TEST(BatchQueue, QuotaRejectionNeverEvictsANeighbor) {
  runtime::TenantTable tenants;
  const auto a = tenants.configure("a", {1.0, 1});
  const auto b = tenants.intern("b");
  QueueLimits limits;
  limits.max_queue_depth = 3;
  BatchQueue queue(8, std::chrono::seconds(30), 0, limits, {}, &tenants);

  ASSERT_EQ(queue.push(tenant_request(a, 1.0f)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(tenant_request(b, 2.0f, Priority::kLow)),
            PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(tenant_request(b, 3.0f, Priority::kLow)),
            PushOutcome::kAccepted);

  // Tenant a is at ITS quota: even a high-priority arrival is shed
  // outright — b's evictable low waiters are not touched.
  PendingRequest urgent = tenant_request(a, 4.0f, Priority::kHigh);
  auto urgent_future = urgent.promise.get_future();
  EXPECT_EQ(queue.push(std::move(urgent)), PushOutcome::kRejected);
  EXPECT_THROW(urgent_future.get(), QueueFull);
  EXPECT_EQ(queue.evicted_total(), 0u);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(BatchQueue, TryPushProbeChargesQuotaOnlyOnAccept) {
  // The spill-probe honesty fix: a probe that bounces leaves no charge
  // behind, a probe that lands charges the tenant at THIS queue.
  runtime::TenantTable tenants;
  const auto a = tenants.configure("a", {1.0, 1});
  BatchQueue full(8, std::chrono::seconds(30), 0, bounded(1), {}, &tenants);
  BatchQueue sibling(8, std::chrono::seconds(30), 0, bounded(1), {},
                     &tenants);
  ASSERT_EQ(full.push(make_request(1.0f)), PushOutcome::kAccepted);

  PendingRequest probe = tenant_request(a, 2.0f);
  EXPECT_EQ(full.try_push(probe), PushOutcome::kRejected);  // depth bound
  EXPECT_EQ(tenants.queued(a), 0u);  // bounced probe left no charge
  EXPECT_EQ(sibling.try_push(probe), PushOutcome::kAccepted);
  EXPECT_EQ(tenants.queued(a), 1u);  // charged where it actually queues

  // At quota now: a further probe is refused WITHOUT failing the promise
  // (the cluster may still find headroom under another tenant).
  PendingRequest second = tenant_request(a, 3.0f);
  auto second_future = second.promise.get_future();
  EXPECT_EQ(sibling.try_push(second), PushOutcome::kRejected);
  EXPECT_EQ(second_future.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_EQ(tenants.quota_rejected_total(), 1u);
}

TEST(BatchQueue, EvictionAndExpiryReleaseTheTenantCharge) {
  runtime::TenantTable tenants;
  const auto a = tenants.configure("a", {1.0, 1});
  // Short flush window: this test pops a lone request mid-way.
  BatchQueue queue(8, std::chrono::microseconds(1000), 0, bounded(1), {},
                   &tenants);

  PendingRequest victim = tenant_request(a, 1.0f, Priority::kLow);
  auto victim_future = victim.promise.get_future();
  ASSERT_EQ(queue.push(std::move(victim)), PushOutcome::kAccepted);
  EXPECT_EQ(tenants.queued(a), 1u);

  // A high arrival evicts a's waiter; the charge is released with it.
  ASSERT_EQ(queue.push(make_request(2.0f, Priority::kHigh)),
            PushOutcome::kAccepted);
  EXPECT_THROW(victim_future.get(), QueueFull);
  EXPECT_EQ(tenants.queued(a), 0u);

  // Deadline reaping releases the charge too.
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));  // drain the high request
  PendingRequest doomed = tenant_request(a, 3.0f);
  doomed.cls.deadline = Clock::now() + std::chrono::microseconds(200);
  auto doomed_future = doomed.promise.get_future();
  ASSERT_EQ(queue.push(std::move(doomed)), PushOutcome::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  queue.close();
  queue.pop_batch(batch);  // reaps the expired request
  EXPECT_THROW(doomed_future.get(), DeadlineExceeded);
  EXPECT_EQ(tenants.queued(a), 0u);
}

TEST(BatchQueue, PopsAreWeightedFairAmongTenantsInOneLane) {
  runtime::TenantTable tenants;
  const auto a = tenants.configure("a", {1.0, 0});
  const auto b = tenants.configure("b", {2.0, 0});
  BatchQueue queue(1, std::chrono::microseconds(100), 0, {}, {}, &tenants);

  // All of a's work arrives BEFORE any of b's; FIFO alone would serve
  // a,a,a,b,b,b. Stride scheduling interleaves by weight instead.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.push(tenant_request(a, 10.0f + i)),
              PushOutcome::kAccepted);
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.push(tenant_request(b, 20.0f + i)),
              PushOutcome::kAccepted);
  }

  std::vector<runtime::TenantId> order;
  std::vector<PendingRequest> batch;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.pop_batch(batch));
    ASSERT_EQ(batch.size(), 1u);
    order.push_back(batch[0].cls.tenant);
  }
  // Deterministic stride trace (w_a=1, w_b=2): a then b,b then a, ...
  const std::vector<runtime::TenantId> expected = {a, b, b, a, b, a};
  EXPECT_EQ(order, expected);
  // Within each tenant the order stays FIFO.
  EXPECT_EQ(queue.timeout_total(), 0u);
}

TEST(BatchQueue, WeightedFairPickStaysInsideThePriorityLane) {
  // Priority still dominates: a high request of a LIGHT tenant goes
  // before queued normal work of the heavy tenant.
  runtime::TenantTable tenants;
  const auto a = tenants.configure("a", {100.0, 0});
  const auto b = tenants.configure("b", {0.5, 0});
  BatchQueue queue(1, std::chrono::microseconds(100), 0, {}, {}, &tenants);

  ASSERT_EQ(queue.push(tenant_request(a, 1.0f, Priority::kNormal)),
            PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(tenant_request(b, 2.0f, Priority::kHigh)),
            PushOutcome::kAccepted);

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);  // high lane first, weight moot
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
}
