// Direct unit tests for the priority/deadline-aware micro-batching queue
// (runtime::BatchQueue): the dynamic-batching flush rule, close semantics,
// priority ordering, and expired-deadline rejection.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/batch_queue.hpp"
#include "util/stopwatch.hpp"

using namespace odenet;
using runtime::BatchQueue;
using runtime::Clock;
using runtime::DeadlineExceeded;
using runtime::PendingRequest;
using runtime::Priority;

namespace {

/// A request tagged through its 1-element image tensor so pop order is
/// observable.
PendingRequest make_request(float tag,
                            Priority priority = Priority::kNormal) {
  PendingRequest req;
  req.image = core::Tensor({1});
  req.image.data()[0] = tag;
  req.cls.priority = priority;
  return req;
}

float tag_of(const PendingRequest& req) { return req.image.data()[0]; }

}  // namespace

TEST(BatchQueue, LoneRequestFlushesOnDeadlineNotBatchSize) {
  BatchQueue queue(8, std::chrono::microseconds(20000));
  ASSERT_TRUE(queue.push(make_request(1.0f)));

  util::Stopwatch watch;
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  const double waited = watch.seconds();

  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
  // The pop had to sit out the flush deadline (with a little scheduling
  // slack), not return instantly and not wait for a full batch.
  EXPECT_GE(waited, 0.015);
  EXPECT_LT(waited, 5.0);
}

TEST(BatchQueue, BurstFillsMaxBatchImmediately) {
  BatchQueue queue(4, std::chrono::seconds(30));  // deadline never fires
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.push(make_request(static_cast<float>(i))));
  }

  util::Stopwatch watch;
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_EQ(batch.size(), 4u);
  // Both batches were full, so neither waited on the 30 s deadline.
  EXPECT_LT(watch.seconds(), 5.0);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BatchQueue, CloseWhileWorkerWaitsDrainsWithoutDeadlineWait) {
  BatchQueue queue(64, std::chrono::seconds(30));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.push(make_request(static_cast<float>(i))));
  }

  // The popper parks on the 30 s flush deadline (3 < 64); close() must
  // flush immediately.
  std::vector<PendingRequest> batch;
  bool popped = false;
  bool exited = false;
  std::thread worker([&] {
    popped = queue.pop_batch(batch);
    std::vector<PendingRequest> rest;
    exited = !queue.pop_batch(rest);  // closed and drained
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  util::Stopwatch watch;
  queue.close();
  worker.join();
  EXPECT_LT(watch.seconds(), 5.0);

  EXPECT_TRUE(popped);
  EXPECT_TRUE(exited);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_FALSE(queue.push(make_request(9.0f)));  // closed refuses new work
}

TEST(BatchQueue, PopsHighestPriorityFirstFifoWithinClass) {
  BatchQueue queue(2, std::chrono::seconds(30));
  ASSERT_TRUE(queue.push(make_request(10.0f, Priority::kLow)));
  ASSERT_TRUE(queue.push(make_request(11.0f, Priority::kLow)));
  ASSERT_TRUE(queue.push(make_request(20.0f, Priority::kHigh)));
  ASSERT_TRUE(queue.push(make_request(30.0f, Priority::kNormal)));
  queue.close();  // flush everything without the deadline wait

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 20.0f);  // high first
  EXPECT_FLOAT_EQ(tag_of(batch[1]), 30.0f);  // then normal

  ASSERT_TRUE(queue.pop_batch(batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 10.0f);  // low, FIFO within class
  EXPECT_FLOAT_EQ(tag_of(batch[1]), 11.0f);

  EXPECT_FALSE(queue.pop_batch(batch));
}

// Anti-starvation aging: a low request older than k x max_delay climbs one
// class per pop scan, so it overtakes high-priority arrivals that land
// after its promotion instead of waiting forever behind them.
TEST(BatchQueue, AgedRequestIsPromotedPastLaterHighArrivals) {
  BatchQueue queue(1, std::chrono::microseconds(1000),
                   /*promote_after_factor=*/1);
  ASSERT_TRUE(queue.push(make_request(1.0f, Priority::kLow)));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // > 1 ms
  ASSERT_TRUE(queue.push(make_request(2.0f, Priority::kHigh)));
  ASSERT_TRUE(queue.push(make_request(3.0f, Priority::kHigh)));

  std::vector<PendingRequest> batch;
  // Pop 1: the scan lifts the aged low request into the normal lane (one
  // class per scan); the batch still takes the queued high work first.
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);
  // Pop 2: second scan lifts it normal -> high, at the TAIL of the high
  // lane — behind 3.0, which was already waiting.
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 3.0f);
  // New high traffic now queues BEHIND the promoted request.
  ASSERT_TRUE(queue.push(make_request(4.0f, Priority::kHigh)));
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
  // Promotion re-orders scheduling but never re-labels the request.
  EXPECT_EQ(batch[0].cls.priority, Priority::kLow);
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 4.0f);

  EXPECT_EQ(queue.promotion_total(), 2u);  // low->normal, normal->high
  EXPECT_EQ(queue.timeout_total(), 0u);
}

TEST(BatchQueue, PromotionDisabledByDefault) {
  BatchQueue queue(1, std::chrono::microseconds(500));
  ASSERT_TRUE(queue.push(make_request(1.0f, Priority::kLow)));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(queue.push(make_request(2.0f, Priority::kHigh)));

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);  // strict priority, no aging
  ASSERT_TRUE(queue.pop_batch(batch));
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 1.0f);
  EXPECT_EQ(queue.promotion_total(), 0u);
}

TEST(BatchQueue, ExpiredDeadlineIsRejectedNotServed) {
  BatchQueue queue(4, std::chrono::microseconds(30000));
  PendingRequest doomed = make_request(1.0f, Priority::kLow);
  doomed.cls.deadline = Clock::now() + std::chrono::microseconds(500);
  std::future<runtime::InferenceResult> doomed_future =
      doomed.promise.get_future();
  ASSERT_TRUE(queue.push(std::move(doomed)));
  ASSERT_TRUE(queue.push(make_request(2.0f)));  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.pop_batch(batch));
  // Only the live request rides; the expired one never occupies a slot.
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FLOAT_EQ(tag_of(batch[0]), 2.0f);
  EXPECT_THROW(doomed_future.get(), DeadlineExceeded);
  EXPECT_EQ(queue.timeout_count(Priority::kLow), 1u);
  EXPECT_EQ(queue.timeout_count(Priority::kNormal), 0u);
  EXPECT_EQ(queue.timeout_total(), 1u);
}

TEST(BatchQueue, DeadlinePushedWhileWorkerParkedIsStillRejectedPromptly) {
  // The worker parks on the 30 s flush deadline with only a deadline-less
  // request queued; a later push with a short deadline must re-arm the
  // wait (not sleep until the stale wake-up) so the rejection is prompt.
  BatchQueue queue(64, std::chrono::seconds(30));
  ASSERT_TRUE(queue.push(make_request(1.0f)));  // no deadline

  std::vector<PendingRequest> served;
  std::thread worker([&] {
    std::vector<PendingRequest> batch;
    while (queue.pop_batch(batch)) {
      for (auto& req : batch) served.push_back(std::move(req));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it park

  PendingRequest doomed = make_request(2.0f);
  doomed.cls.deadline = Clock::now() + std::chrono::milliseconds(2);
  std::future<runtime::InferenceResult> doomed_future =
      doomed.promise.get_future();
  ASSERT_TRUE(queue.push(std::move(doomed)));

  util::Stopwatch watch;
  EXPECT_THROW(doomed_future.get(), DeadlineExceeded);
  EXPECT_LT(watch.seconds(), 5.0);  // not the 30 s flush deadline
  EXPECT_EQ(queue.timeout_total(), 1u);
  queue.close();
  worker.join();
  // The deadline-less request survived the reap and drained on close.
  ASSERT_EQ(served.size(), 1u);
  EXPECT_FLOAT_EQ(tag_of(served[0]), 1.0f);
}

TEST(BatchQueue, WorkerWakesEarlyToRejectExpiringRequest) {
  // Flush deadline far out; the request's own 2 ms deadline must wake the
  // waiting worker, fail the promise promptly, and leave it waiting.
  BatchQueue queue(64, std::chrono::seconds(30));
  PendingRequest doomed = make_request(1.0f);
  doomed.cls.deadline = Clock::now() + std::chrono::milliseconds(2);
  std::future<runtime::InferenceResult> doomed_future =
      doomed.promise.get_future();
  ASSERT_TRUE(queue.push(std::move(doomed)));

  std::vector<PendingRequest> batch;
  std::thread worker([&] { EXPECT_FALSE(queue.pop_batch(batch)); });
  util::Stopwatch watch;
  // The promise resolves as soon as the worker reaps — well before the
  // 30 s flush deadline.
  EXPECT_THROW(doomed_future.get(), DeadlineExceeded);
  EXPECT_LT(watch.seconds(), 5.0);
  EXPECT_EQ(queue.timeout_total(), 1u);
  EXPECT_EQ(queue.size(), 0u);
  queue.close();  // lets the worker exit
  worker.join();
}
