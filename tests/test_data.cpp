// Datasets: synthetic generator, CIFAR binary loader, DataLoader.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "data/cifar.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"

using namespace odenet::data;

TEST(Dataset, ImageConversionAndValidation) {
  Dataset ds;
  ds.name = "t";
  ds.channels = 1;
  ds.height = 2;
  ds.width = 2;
  ds.num_classes = 2;
  ds.pixels = {0, 128, 255, 64};
  ds.labels = {1};
  ds.validate();
  auto img = ds.image(0);
  EXPECT_EQ(img.shape(), (std::vector<int>{1, 2, 2}));
  EXPECT_NEAR(img.at1(1), 128.0f / 255.0f, 1e-6f);
  EXPECT_THROW(ds.image(1), odenet::Error);
  ds.labels = {5};
  EXPECT_THROW(ds.validate(), odenet::Error);
}

TEST(Dataset, ChannelStats) {
  Dataset ds;
  ds.channels = 2;
  ds.height = 1;
  ds.width = 2;
  ds.num_classes = 1;
  // ch0: 0 and 255 -> mean 0.5; ch1: 255, 255 -> mean 1.0, std 0.
  ds.pixels = {0, 255, 255, 255};
  ds.labels = {0};
  auto stats = compute_channel_stats(ds);
  EXPECT_NEAR(stats.mean[0], 0.5f, 1e-3f);
  EXPECT_NEAR(stats.mean[1], 1.0f, 1e-6f);
  EXPECT_NEAR(stats.stddev[0], 0.5f, 1e-3f);
  EXPECT_NEAR(stats.stddev[1], 0.0f, 1e-6f);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticConfig cfg{.num_classes = 5, .images_per_class = 3, .seed = 99};
  Dataset a = make_synthetic(cfg);
  Dataset b = make_synthetic(cfg);
  EXPECT_EQ(a.pixels, b.pixels);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticConfig cfg{.num_classes = 3, .images_per_class = 2, .seed = 1};
  SyntheticConfig cfg2 = cfg;
  cfg2.seed = 2;
  EXPECT_NE(make_synthetic(cfg).pixels, make_synthetic(cfg2).pixels);
}

TEST(Synthetic, ShapesAndBalance) {
  SyntheticConfig cfg{.num_classes = 10, .images_per_class = 4};
  Dataset ds = make_synthetic(cfg);
  EXPECT_EQ(ds.size(), 40u);
  EXPECT_EQ(ds.pixels.size(), 40u * 3 * 32 * 32);
  std::vector<int> counts(10, 0);
  for (int l : ds.labels) ++counts[l];
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(Synthetic, SameClassSamplesCorrelateMoreThanCrossClass) {
  // Prototype structure: two samples of one class must be closer on
  // average than samples of different classes.
  SyntheticConfig cfg{.num_classes = 4, .images_per_class = 6,
                      .noise_std = 0.08, .seed = 5};
  Dataset ds = make_synthetic(cfg);
  auto dist = [&](std::size_t i, std::size_t j) {
    double acc = 0;
    const auto* a = ds.pixels.data() + i * ds.image_bytes();
    const auto* b = ds.pixels.data() + j * ds.image_bytes();
    for (std::size_t k = 0; k < ds.image_bytes(); ++k) {
      const double d = (static_cast<double>(a[k]) - b[k]) / 255.0;
      acc += d * d;
    }
    return acc;
  };
  // Class 0 occupies indices 0..5; class 1: 6..11.
  double same = 0, cross = 0;
  int ns = 0, nc = 0;
  for (int i = 0; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j) {
      same += dist(i, j);
      ++ns;
    }
  for (int i = 0; i < 6; ++i)
    for (int j = 6; j < 12; ++j) {
      cross += dist(i, j);
      ++nc;
    }
  EXPECT_LT(same / ns, cross / nc);
}

TEST(Synthetic, PairSharesPrototypes) {
  SyntheticConfig cfg{.num_classes = 3, .images_per_class = 4,
                      .noise_std = 0.05, .seed = 8};
  auto pair = make_synthetic_pair(cfg, 2);
  EXPECT_EQ(pair.train.size(), 12u);
  EXPECT_EQ(pair.test.size(), 6u);
  // Same prototypes: a class-0 test image must be closer to class-0 train
  // images than to class-2 train images (checked via mean distance).
  auto mean_dist = [&](const Dataset& a, std::size_t ia, const Dataset& b,
                       std::size_t lo, std::size_t hi) {
    double acc = 0;
    for (std::size_t j = lo; j < hi; ++j) {
      double d2 = 0;
      for (std::size_t k = 0; k < a.image_bytes(); ++k) {
        const double d = (static_cast<double>(
                              a.pixels[ia * a.image_bytes() + k]) -
                          b.pixels[j * b.image_bytes() + k]) /
                         255.0;
        d2 += d * d;
      }
      acc += d2;
    }
    return acc / static_cast<double>(hi - lo);
  };
  const double to_class0 = mean_dist(pair.test, 0, pair.train, 0, 4);
  const double to_class2 = mean_dist(pair.test, 0, pair.train, 8, 12);
  EXPECT_LT(to_class0, to_class2);
}

TEST(Cifar, LoadsCraftedBinaryFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "odenet_cifar_test";
  fs::create_directories(dir);
  const fs::path file = dir / "train.bin";
  {
    std::ofstream os(file, std::ios::binary);
    // Two CIFAR-100 records: [coarse, fine, 3072 pixels].
    for (int rec = 0; rec < 2; ++rec) {
      os.put(static_cast<char>(7));             // coarse (ignored)
      os.put(static_cast<char>(42 + rec));      // fine label
      for (int i = 0; i < 3072; ++i) {
        os.put(static_cast<char>((i + rec) % 256));
      }
    }
  }
  Dataset ds = load_cifar100_file(file.string());
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.labels[0], 42);
  EXPECT_EQ(ds.labels[1], 43);
  EXPECT_EQ(ds.pixels[0], 0);
  EXPECT_EQ(ds.pixels[ds.image_bytes()], 1);  // second record shifted by 1
  // max_images cap.
  EXPECT_EQ(load_cifar100_file(file.string(), 1).size(), 1u);
  fs::remove_all(dir);
}

TEST(Cifar, MissingDirectoryReturnsNullopt) {
  EXPECT_FALSE(try_load_cifar100("/nonexistent/dir").has_value());
}

TEST(Cifar, MissingFileThrows) {
  EXPECT_THROW(load_cifar100_file("/nonexistent/file.bin"), odenet::Error);
}

TEST(DataLoader, CoversEveryImageExactlyOnce) {
  SyntheticConfig cfg{.num_classes = 4, .images_per_class = 5};
  Dataset ds = make_synthetic(cfg);
  DataLoader loader(ds, {.batch_size = 3, .shuffle = true});
  std::multiset<int> labels_seen;
  int batches = 0;
  while (loader.has_next()) {
    auto b = loader.next();
    for (int l : b.labels) labels_seen.insert(l);
    ++batches;
  }
  EXPECT_EQ(batches, 7);  // ceil(20/3)
  EXPECT_EQ(labels_seen.size(), 20u);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(labels_seen.count(c), 5u);
}

TEST(DataLoader, BatchShapesAndDropLast) {
  SyntheticConfig cfg{.num_classes = 2, .images_per_class = 5};
  Dataset ds = make_synthetic(cfg);  // 10 images
  DataLoader loader(ds, {.batch_size = 4, .shuffle = false,
                         .drop_last = true});
  EXPECT_EQ(loader.batches_per_epoch(), 2);
  auto b = loader.next();
  EXPECT_EQ(b.images.shape(), (std::vector<int>{4, 3, 32, 32}));
  loader.next();
  EXPECT_FALSE(loader.has_next());  // remaining 2 dropped
}

TEST(DataLoader, ResetReshufflesDeterministically) {
  SyntheticConfig cfg{.num_classes = 5, .images_per_class = 4};
  Dataset ds = make_synthetic(cfg);
  DataLoader a(ds, {.batch_size = 20, .shuffle = true, .seed = 3});
  DataLoader b(ds, {.batch_size = 20, .shuffle = true, .seed = 3});
  EXPECT_EQ(a.next().labels, b.next().labels);
}

TEST(DataLoader, NormalizationApplied) {
  Dataset ds;
  ds.channels = 1;
  ds.height = 1;
  ds.width = 1;
  ds.num_classes = 1;
  ds.pixels = {255};
  ds.labels = {0};
  DataLoader loader(ds, {.batch_size = 1, .shuffle = false,
                         .mean = {0.5f}, .stddev = {0.25f}});
  auto b = loader.next();
  // (1.0 - 0.5) / 0.25 = 2.
  EXPECT_NEAR(b.images.at(0, 0, 0, 0), 2.0f, 1e-5f);
}

TEST(DataLoader, AugmentationKeepsShapeAndRange) {
  SyntheticConfig cfg{.num_classes = 2, .images_per_class = 8};
  Dataset ds = make_synthetic(cfg);
  DataLoader loader(ds, {.batch_size = 16, .shuffle = false,
                         .augment = true});
  auto b = loader.next();
  EXPECT_EQ(b.images.shape(), (std::vector<int>{16, 3, 32, 32}));
  for (std::size_t i = 0; i < b.images.numel(); ++i) {
    EXPECT_GE(b.images.data()[i], 0.0f);
    EXPECT_LE(b.images.data()[i], 1.0f);
  }
}

TEST(DataLoader, AugmentationChangesPixels) {
  SyntheticConfig cfg{.num_classes = 1, .images_per_class = 1};
  Dataset ds = make_synthetic(cfg);
  DataLoader plain(ds, {.batch_size = 1, .shuffle = false, .augment = false});
  DataLoader aug(ds, {.batch_size = 1, .shuffle = false, .augment = true,
                      .seed = 1234});
  auto a = plain.next().images;
  // Several augmented draws: at least one must differ from the clean image.
  bool changed = false;
  for (int trial = 0; trial < 4 && !changed; ++trial) {
    aug.reset();
    auto b = aug.next().images;
    for (std::size_t i = 0; i < a.numel(); ++i) {
      if (a.data()[i] != b.data()[i]) {
        changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST(DataLoader, RejectsBadConfig) {
  SyntheticConfig cfg{.num_classes = 1, .images_per_class = 1};
  Dataset ds = make_synthetic(cfg);
  EXPECT_THROW(DataLoader(ds, {.batch_size = 0}), odenet::Error);
  EXPECT_THROW(DataLoader(ds, {.batch_size = 1, .mean = {0.5f}}),
               odenet::Error);  // stddev missing
}
