// PS/PL co-simulation of whole networks.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/system_sim.hpp"
#include "util/rng.hpp"

using namespace odenet;
using models::Arch;
using models::StageId;

namespace {

models::WidthConfig tiny_width() {
  return {.input_channels = 3, .input_size = 16, .base_channels = 4,
          .num_classes = 5};
}

core::Tensor random_input(int batch, util::Rng& rng) {
  core::Tensor x({batch, 3, 16, 16});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return x;
}

}  // namespace

TEST(SystemSim, LogitsCloseToSoftwareNetwork) {
  util::Rng rng(1);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);

  sched::SystemSimulator sim(net,
                             sched::Partition::single(StageId::kLayer3_2, 16));
  // Batch of 1: the PL normalizes per image, so the apples-to-apples
  // software reference is a single-image batch.
  core::Tensor x = random_input(1, rng);

  // Software reference AFTER the simulator aligned BN semantics.
  net.set_training(false);
  core::Tensor sw = net.forward(x);
  core::Tensor hybrid = sim.forward(x);

  ASSERT_TRUE(sw.same_shape(hybrid));
  for (std::size_t i = 0; i < sw.numel(); ++i) {
    EXPECT_NEAR(hybrid.data()[i], sw.data()[i], 0.15f) << "logit " << i;
  }
}

TEST(SystemSim, PredictionsUsuallyAgreeWithSoftware) {
  util::Rng rng(2);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  sched::SystemSimulator sim(net,
                             sched::Partition::single(StageId::kLayer3_2, 16));
  // Per-image comparison (the PL normalizes each image independently).
  int agree = 0;
  for (int i = 0; i < 8; ++i) {
    core::Tensor x = random_input(1, rng);
    if (net.predict(x) == sim.predict(x)) ++agree;
  }
  EXPECT_GE(agree, 7) << "fixed-point flip rate too high";
}

TEST(SystemSim, ReportSplitsPsAndPl) {
  util::Rng rng(3);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  sched::SystemSimulator sim(net,
                             sched::Partition::single(StageId::kLayer3_2, 16));
  sched::SystemRunReport report;
  sim.forward(random_input(2, rng), &report);

  EXPECT_GT(report.ps_seconds, 0.0);
  EXPECT_GT(report.pl_seconds, 0.0);
  EXPECT_GT(report.pl_cycles, 0u);
  // Stage list covers the non-empty stages, exactly one on the PL.
  int on_pl = 0;
  for (const auto& s : report.stages) on_pl += s.on_pl;
  EXPECT_EQ(on_pl, 1);
  EXPECT_EQ(report.stages.size(), 4u);  // layer1, 2_1, 3_1, 3_2 (2_2 removed)
}

TEST(SystemSim, PlCyclesMatchStaticModel) {
  util::Rng rng(4);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  sched::Partition part = sched::Partition::single(StageId::kLayer3_2, 8);
  sched::SystemSimulator sim(net, part);
  sched::SystemRunReport report;
  const int batch = 3;
  sim.forward(random_input(batch, rng), &report);

  const auto& spec = net.stage(StageId::kLayer3_2)->spec();
  const std::uint64_t per_exec =
      sched::LatencyModel::pl_block_cycles(spec, 8);
  const std::size_t fwords = static_cast<std::size_t>(spec.out_channels) *
                             spec.in_size * spec.in_size;
  const std::uint64_t expected =
      batch * spec.executions *
      (per_exec + fpga::roundtrip_cycles(fwords, fwords));
  EXPECT_EQ(report.pl_cycles, expected);
}

TEST(SystemSim, NoOffloadRunsPureSoftware) {
  util::Rng rng(5);
  models::Network net(models::make_spec(Arch::kResNet, 14, tiny_width()));
  net.init(rng);
  sched::SystemSimulator sim(net, sched::Partition::none());
  sched::SystemRunReport report;
  core::Tensor x = random_input(1, rng);
  net.set_training(false);
  core::Tensor sw = net.forward(x);
  core::Tensor hybrid = sim.forward(x, &report);
  for (std::size_t i = 0; i < sw.numel(); ++i) {
    EXPECT_FLOAT_EQ(hybrid.data()[i], sw.data()[i]);  // identical path
  }
  EXPECT_EQ(report.pl_cycles, 0u);
  EXPECT_EQ(report.pl_seconds, 0.0);
}

TEST(SystemSim, RejectsNonOdeOffload) {
  util::Rng rng(6);
  models::Network net(models::make_spec(Arch::kResNet, 14, tiny_width()));
  net.init(rng);
  // ResNet's layer3_2 stacks plain blocks: not offloadable functionally.
  EXPECT_THROW(sched::SystemSimulator(
                   net, sched::Partition::single(StageId::kLayer3_2, 16)),
               odenet::Error);
}

TEST(SystemSim, ReloadWeightsTracksTraining) {
  util::Rng rng(7);
  models::Network net(models::make_spec(Arch::kROdeNet3, 14, tiny_width()));
  net.init(rng);
  sched::SystemSimulator sim(net,
                             sched::Partition::single(StageId::kLayer3_2, 16));
  core::Tensor x = random_input(1, rng);
  core::Tensor before = sim.forward(x);

  // Perturb every parameter of the offloaded block (a uniform shift of one
  // conv's weights alone is largely absorbed by the following batch norm);
  // without reload the accelerator still holds the stale BRAM image.
  for (core::Param* p : net.stage(StageId::kLayer3_2)->ode()->params()) {
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      p->value.data()[i] += 0.5f;
    }
  }
  core::Tensor stale = sim.forward(x);
  double stale_diff = 0;
  for (std::size_t i = 0; i < before.numel(); ++i) {
    stale_diff = std::max(stale_diff, std::fabs(static_cast<double>(
                              stale.data()[i]) - before.data()[i]));
  }
  EXPECT_LT(stale_diff, 1e-6);

  sim.reload_weights();
  core::Tensor fresh = sim.forward(x);
  double fresh_diff = 0;
  for (std::size_t i = 0; i < before.numel(); ++i) {
    fresh_diff = std::max(fresh_diff, std::fabs(static_cast<double>(
                              fresh.data()[i]) - before.data()[i]));
  }
  EXPECT_GT(fresh_diff, 1e-4);
}
