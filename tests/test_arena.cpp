// ScratchArena / ArenaPool (core/arena.hpp): frame recycling without
// regrowth, frame-budget enforcement, span disjointness, and race-free
// concurrent checkout — the invariants the batched conv path and the
// inference engine's per-backend pools lean on. The concurrency tests run
// under the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/arena.hpp"
#include "util/check.hpp"

using odenet::core::ArenaPool;
using odenet::core::ScratchArena;

TEST(ScratchArena, FrameRecyclesWithoutRegrowth) {
  ScratchArena arena;
  EXPECT_EQ(arena.capacity(), 0u);

  arena.frame(1000);
  EXPECT_EQ(arena.capacity(), 1000u);
  EXPECT_EQ(arena.growths(), 1u);
  float* first = arena.alloc(1000);
  ASSERT_NE(first, nullptr);

  // Smaller and equal frames recycle the same storage: same capacity, no
  // growth, same base address.
  for (std::size_t floats : {std::size_t{800}, std::size_t{1000},
                             std::size_t{1}, std::size_t{1000}}) {
    arena.frame(floats);
    EXPECT_EQ(arena.capacity(), 1000u);
    EXPECT_EQ(arena.growths(), 1u);
    EXPECT_EQ(arena.alloc(floats), first);
  }

  // Only a larger frame grows.
  arena.frame(2000);
  EXPECT_EQ(arena.capacity(), 2000u);
  EXPECT_EQ(arena.growths(), 2u);
  EXPECT_EQ(arena.frames(), 6u);
}

TEST(ScratchArena, AllocBeyondFrameBudgetThrows) {
  ScratchArena arena;
  arena.frame(10);
  (void)arena.alloc(8);
  EXPECT_EQ(arena.used(), 8u);
  EXPECT_THROW(arena.alloc(4), odenet::Error);

  // The budget is the declared frame, not the (possibly larger) capacity:
  // over-allocating against a recycled bigger buffer still throws.
  arena.frame(10);
  arena.frame(4);
  EXPECT_THROW(arena.alloc(5), odenet::Error);
}

TEST(ScratchArena, SpansAreDisjointAndStableWithinFrame) {
  ScratchArena arena;
  arena.frame(64 + 32);
  float* a = arena.alloc(64);
  float* b = arena.alloc(32);
  ASSERT_EQ(b, a + 64);
  for (int i = 0; i < 64; ++i) a[i] = 1.0f;
  for (int i = 0; i < 32; ++i) b[i] = 2.0f;
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a[i], 1.0f);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(b[i], 2.0f);
}

TEST(ArenaPool, SequentialAcquireRecyclesOneArena) {
  ArenaPool pool;
  EXPECT_EQ(pool.created(), 0u);
  ScratchArena* first = nullptr;
  {
    ArenaPool::Lease lease = pool.acquire();
    first = lease.get();
    lease->frame(128);
    EXPECT_EQ(pool.idle(), 0u);
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u);
  {
    // The recycled arena comes back warm: same object, capacity kept.
    ArenaPool::Lease lease = pool.acquire();
    EXPECT_EQ(lease.get(), first);
    EXPECT_EQ(lease->capacity(), 128u);
  }
  EXPECT_EQ(pool.created(), 1u);
}

TEST(ArenaPool, ConcurrentLeasesGetDistinctArenas) {
  ArenaPool pool;
  ArenaPool::Lease a = pool.acquire();
  ArenaPool::Lease b = pool.acquire();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.created(), 2u);
}

TEST(ArenaPool, LeaseMoveTransfersOwnership) {
  ArenaPool pool;
  ArenaPool::Lease a = pool.acquire();
  ScratchArena* raw = a.get();
  ArenaPool::Lease b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move probe
  ASSERT_TRUE(b);
  EXPECT_EQ(b.get(), raw);
  ArenaPool::Lease c;
  c = std::move(b);
  EXPECT_EQ(c.get(), raw);
  // One arena in flight the whole time.
  EXPECT_EQ(pool.created(), 1u);
}

TEST(ArenaPool, ConcurrentCheckoutIsRaceFree) {
  // The engine-worker pattern: several threads repeatedly check out an
  // arena, frame it, fill disjoint spans, verify, return it. TSan-clean,
  // and the pool never creates more arenas than the peak concurrency.
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  ArenaPool pool;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &mismatches, t] {
      for (int it = 0; it < kIters; ++it) {
        ArenaPool::Lease lease = pool.acquire();
        const std::size_t floats = 256 + static_cast<std::size_t>(t) * 16;
        lease->frame(2 * floats);
        float* x = lease->alloc(floats);
        float* y = lease->alloc(floats);
        const float vx = static_cast<float>(t * kIters + it);
        for (std::size_t i = 0; i < floats; ++i) x[i] = vx;
        for (std::size_t i = 0; i < floats; ++i) y[i] = -vx;
        for (std::size_t i = 0; i < floats; ++i) {
          if (x[i] != vx || y[i] != -vx) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(pool.created(), static_cast<std::size_t>(kThreads));
  EXPECT_GE(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), pool.created());
}
