// The PL simulator: cycle model against the paper's published numbers,
// functional fixed-point equivalence against the float reference kernels,
// BRAM allocation, AXI, timing closure.
#include <gtest/gtest.h>

#include <cmath>

#include "core/init.hpp"
#include "fpga/accelerator.hpp"
#include "fpga/axi.hpp"
#include "fpga/bn_engine.hpp"
#include "fpga/bram.hpp"
#include "fpga/conv_engine.hpp"
#include "fpga/device.hpp"
#include "fpga/mac_array.hpp"
#include "models/odeblock.hpp"
#include "util/rng.hpp"

using namespace odenet::fpga;
using odenet::core::Tensor;
namespace ou = odenet::util;
namespace ofx = odenet::fixed;

namespace {
Tensor random_tensor(std::vector<int> shape, ou::Rng& rng, double std = 0.5) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.normal(0.0, std));
  }
  return t;
}
}  // namespace

TEST(Device, Xc7z020Inventory) {
  const auto& dev = xc7z020();
  EXPECT_EQ(dev.bram36, 140);
  EXPECT_EQ(dev.dsp, 220);
  EXPECT_EQ(dev.lut, 53200);
  EXPECT_EQ(dev.ff, 106400);
}

TEST(Device, PynqZ2Board) {
  const auto& b = pynq_z2();
  EXPECT_EQ(b.cpu_mhz, 650.0);
  EXPECT_EQ(b.cores, 2);
  EXPECT_EQ(b.dram_mb, 512);
  EXPECT_EQ(b.pl_clock_mhz, 100.0);
}

TEST(Device, TimingClosureMatchesPaper) {
  // conv_x16 closes at 100 MHz; conv_x32 does not (paper §3.1).
  EXPECT_TRUE(meets_timing(16, 100.0));
  EXPECT_FALSE(meets_timing(32, 100.0));
  // Halving the clock admits conv_x32.
  EXPECT_TRUE(meets_timing(32, 50.0));
  EXPECT_EQ(max_parallelism_at(100.0), 16);
}

TEST(MacArray, DspFormulaMatchesTable3) {
  EXPECT_EQ(dsp_for_parallelism(1), 8);
  EXPECT_EQ(dsp_for_parallelism(4), 20);
  EXPECT_EQ(dsp_for_parallelism(8), 36);
  EXPECT_EQ(dsp_for_parallelism(16), 68);
  EXPECT_EQ(dsp_for_parallelism(32), 132);
}

TEST(MacArray, CycleModelGroupsChannels) {
  MacArray m(16);
  // 64 channels -> 4 groups; 10 beats/channel -> 4*10*5 cycles.
  EXPECT_EQ(m.cycles(10, 64), 200u);
  // Fewer channels than units: one group.
  EXPECT_EQ(m.cycles(10, 8), 50u);
  EXPECT_THROW(MacArray(0), odenet::Error);
  EXPECT_THROW(MacArray(65), odenet::Error);
}

TEST(MacArray, WritebackRounding) {
  // 1.5 * 1.0 in Q4: raw 24 * 16 = 384; >>4 with round = 24 (1.5).
  EXPECT_EQ(MacArray::writeback(384, 4), 24);
  // Rounding: raw 7 at frac 2 -> 7/4 = 1.75 -> rounds to 2.
  EXPECT_EQ(MacArray::writeback(7, 2), 2);
  // Negative symmetric rounding.
  EXPECT_EQ(MacArray::writeback(-7, 2), -2);
}

// --------------------------------------------------------------------------
// The published cycle series (§3.1): layer3_2 at conv_x1/4/8/16/32.

struct CycleCase {
  int parallelism;
  double paper_mcycles;
  double tolerance_pct;
};

class Layer32Cycles : public ::testing::TestWithParam<CycleCase> {};

TEST_P(Layer32Cycles, BlockCyclesMatchPaper) {
  const auto p = GetParam();
  const std::uint64_t conv = ConvEngine::conv_cycles(64, 64, 8, p.parallelism);
  const std::uint64_t bn = BnEngine::bn_cycles(64, 8);
  const double mcycles = static_cast<double>(2 * conv + 2 * bn) / 1e6;
  EXPECT_NEAR(mcycles, p.paper_mcycles,
              p.paper_mcycles * p.tolerance_pct / 100.0)
      << "conv_x" << p.parallelism;
}

INSTANTIATE_TEST_SUITE_P(PaperSeries, Layer32Cycles,
                         ::testing::Values(CycleCase{1, 23.78, 0.5},
                                           CycleCase{4, 6.07, 0.1},
                                           CycleCase{8, 3.12, 0.1},
                                           CycleCase{16, 1.64, 0.3},
                                           CycleCase{32, 0.90, 1.0}));

TEST(ConvEngine, CyclesScaleInverselyUpToChannelCap) {
  // layer3_2 conv: exactly 11,796,480 cycles at x1 (64 groups x 36864
  // beats x 5); parallelism beyond Cout=64 cannot help.
  EXPECT_EQ(ConvEngine::conv_cycles(64, 64, 8, 1), 11796480u);
  EXPECT_EQ(ConvEngine::conv_cycles(64, 64, 8, 64),
            ConvEngine::conv_cycles(64, 64, 8, 64));
  EXPECT_EQ(ConvEngine::conv_cycles(64, 64, 8, 16),
            4u * 36864u * 5u);
}

TEST(ConvEngine, ConvDominatesAtSingleMac) {
  // Paper footnote 1: the two convolutions are ~99% of layer3_2 cycles
  // with one MAC unit.
  const double conv = 2.0 * ConvEngine::conv_cycles(64, 64, 8, 1);
  const double bn = 2.0 * BnEngine::bn_cycles(64, 8);
  EXPECT_GT(conv / (conv + bn), 0.99);
}

TEST(ConvEngine, FunctionalMatchesFloatReference) {
  ou::Rng rng(1);
  odenet::core::Conv2d ref({.in_channels = 4, .out_channels = 6});
  odenet::core::init_conv(ref, rng);

  ConvEngine engine({.in_channels = 4, .out_channels = 6, .extent = 5,
                     .parallelism = 4});
  engine.load_weights(ofx::quantize(ref.weight().value, 20));
  EXPECT_FALSE(engine.has_time_weights());

  Tensor x = random_tensor({1, 4, 5, 5}, rng);
  // Reference uses the dequantized weights so both paths compute the same
  // math, the engine in fixed point.
  ref.weight().value = ofx::dequantize(ofx::quantize(ref.weight().value, 20));
  Tensor want = ref.forward(x);

  std::uint64_t cycles = 0;
  auto got = engine.run(ofx::quantize(x.reshaped({4, 5, 5}), 20), 0.0f,
                        &cycles);
  Tensor gotf = ofx::dequantize(got);
  for (std::size_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(gotf.data()[i], want.data()[i], 1e-4f) << "at " << i;
  }
  EXPECT_EQ(cycles, engine.cycles_per_run());
}

TEST(ConvEngine, TimeChannelFoldMatchesConcatConv) {
  ou::Rng rng(2);
  odenet::core::Conv2d ref({.in_channels = 3, .out_channels = 3,
                            .time_channel = true});
  odenet::core::init_conv(ref, rng);
  ref.weight().value = ofx::dequantize(ofx::quantize(ref.weight().value, 20));

  ConvEngine engine({.in_channels = 3, .out_channels = 3, .extent = 6,
                     .parallelism = 1});
  engine.load_weights(ofx::quantize(ref.weight().value, 20));
  EXPECT_TRUE(engine.has_time_weights());

  Tensor x = random_tensor({1, 3, 6, 6}, rng);
  for (float t : {0.0f, 1.0f, 3.0f}) {
    ref.set_time(t);
    Tensor want = ref.forward(x);
    auto got = ofx::dequantize(
        engine.run(ofx::quantize(x.reshaped({3, 6, 6}), 20), t));
    for (std::size_t i = 0; i < want.numel(); ++i) {
      EXPECT_NEAR(got.data()[i], want.data()[i], 2e-4f)
          << "t=" << t << " at " << i;
    }
  }
}

TEST(ConvEngine, RejectsBadShapes) {
  ConvEngine engine({.in_channels = 2, .out_channels = 2, .extent = 4,
                     .parallelism = 1});
  ofx::FixedTensor bad;
  bad.shape = {3, 4, 4};
  bad.raw.resize(48);
  EXPECT_THROW(engine.run(bad, 0.0f), odenet::Error);  // weights not loaded
  odenet::core::Tensor w({2, 2, 3, 3});
  engine.load_weights(ofx::quantize(w, 20));
  EXPECT_THROW(engine.run(bad, 0.0f), odenet::Error);  // wrong channels
}

TEST(BnEngine, CycleModel) {
  // elems*20 + channels*40.
  EXPECT_EQ(BnEngine::bn_cycles(64, 8), 4096u * 20 + 64u * 40);
  EXPECT_EQ(BnEngine::bn_cycles(16, 32), 16384u * 20 + 16u * 40);
}

TEST(BnEngine, FunctionalMatchesBatchStatsBn) {
  ou::Rng rng(3);
  odenet::core::BatchNorm2d ref(4);
  ref.set_use_batch_stats_in_eval(true);
  ref.gamma().value.at1(1) = 1.7f;
  ref.beta().value.at1(2) = -0.6f;

  BnEngine engine({.channels = 4, .extent = 6});
  engine.load_params(ofx::quantize(ref.gamma().value, 20),
                     ofx::quantize(ref.beta().value, 20));

  Tensor x = random_tensor({1, 4, 6, 6}, rng, 1.0);
  Tensor want = ref.forward(x);
  std::uint64_t cycles = 0;
  auto got = ofx::dequantize(
      engine.run(ofx::quantize(x.reshaped({4, 6, 6}), 20), &cycles));
  for (std::size_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 5e-3f) << "at " << i;
  }
  EXPECT_EQ(cycles, engine.cycles_per_run());
}

TEST(BnEngine, FusedReluClamps) {
  BnEngine engine({.channels = 1, .extent = 4, .fused_relu = true});
  odenet::core::Tensor gamma({1}), beta({1});
  gamma.at1(0) = 1.0f;
  engine.load_params(ofx::quantize(gamma, 20), ofx::quantize(beta, 20));
  ou::Rng rng(4);
  Tensor x = random_tensor({1, 1, 4, 4}, rng, 2.0);
  auto out = ofx::dequantize(engine.run(ofx::quantize(x.reshaped({1, 4, 4}),
                                                      20)));
  for (std::size_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out.data()[i], 0.0f);
  }
  // Normalized output must contain zeros (the clamped half).
  int zeros = 0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    zeros += (out.data()[i] == 0.0f);
  }
  EXPECT_GT(zeros, 0);
}

TEST(Bram, AllocationGranularity) {
  BramAllocator a;
  // 512 32-bit words fit exactly one BRAM18.
  EXPECT_EQ(a.allocate("b1", 512, 1, 32), 1);
  EXPECT_EQ(a.allocate("b2", 513, 1, 32), 2);
  // 16-bit words pack two per entry.
  EXPECT_EQ(a.allocate("b3", 1024, 1, 16), 1);
  // Banking multiplies granularity.
  EXPECT_EQ(a.allocate("b4", 512, 4, 32), 4);
  EXPECT_EQ(a.bram18_used(), 1 + 2 + 1 + 4);
  EXPECT_EQ(a.bram36_used(), 4);  // ceil(8/2)
}

TEST(Bram, SaturationDetected) {
  FpgaDevice tiny{.part = "tiny", .bram36 = 2, .dsp = 10, .lut = 100,
                  .ff = 100};
  BramAllocator a(tiny);
  a.allocate("big", 5 * 1024, 1, 32);  // 10 BRAM18 = 5 BRAM36 > 2
  EXPECT_TRUE(a.saturated());
  EXPECT_EQ(a.bram36_placed(), 2);
  EXPECT_GT(a.utilization(), 1.0);
}

TEST(Axi, PaperTransferModel) {
  // 1 cycle per float32 word, no setup: layer3_2 fmap = 4096 words.
  EXPECT_EQ(transfer_cycles(4096), 4096u);
  EXPECT_EQ(roundtrip_cycles(4096, 4096), 8192u);
  AxiConfig faster{.cycles_per_word = 0.25, .setup_cycles = 100};
  EXPECT_EQ(transfer_cycles(4096, faster), 100u + 1024u);
}

// --------------------------------------------------------------------------
// Whole-accelerator behaviour.

TEST(Accelerator, RejectsTimingViolation) {
  EXPECT_THROW(OdeBlockAccelerator({.channels = 64, .extent = 8,
                                    .parallelism = 32}),
               odenet::Error);
  // Down-clocked conv_x32 is allowed.
  EXPECT_NO_THROW(OdeBlockAccelerator(
      {.channels = 64, .extent = 8, .parallelism = 32, .clock_mhz = 50.0}));
  // Or with enforcement disabled.
  EXPECT_NO_THROW(OdeBlockAccelerator({.channels = 64, .extent = 8,
                                       .parallelism = 32,
                                       .enforce_timing = false}));
}

TEST(Accelerator, BranchEvalMatchesSoftware) {
  ou::Rng rng(5);
  odenet::core::BuildingBlock block({.in_channels = 4, .out_channels = 4,
                                     .stride = 1, .time_channel = true});
  odenet::core::init_block(block, rng);
  block.bn1().set_use_batch_stats_in_eval(true);
  block.bn2().set_use_batch_stats_in_eval(true);
  // Snap weights to Q20 so both paths see identical parameters.
  for (auto* p : block.params()) {
    p->value = ofx::dequantize(ofx::quantize(p->value, 20));
  }

  OdeBlockAccelerator accel({.channels = 4, .extent = 6, .parallelism = 4});
  accel.load_weights(block);

  Tensor z = random_tensor({1, 4, 6, 6}, rng);
  Tensor want = block.branch_forward(z, 1.0f);
  CycleBreakdown cycles;
  Tensor got = accel.eval_branch(z, 1.0f, &cycles);

  ASSERT_TRUE(got.same_shape(want));
  for (std::size_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 2e-2f) << "at " << i;
  }
  EXPECT_GT(cycles.conv1, 0u);
  EXPECT_GT(cycles.bn2, 0u);
}

TEST(Accelerator, EulerSolveMatchesOdeBlock) {
  ou::Rng rng(6);
  odenet::models::OdeBlock ode({.channels = 4, .executions = 2}, "ode");
  odenet::core::init_block(ode.block(), rng);
  ode.block().bn1().set_use_batch_stats_in_eval(true);
  ode.block().bn2().set_use_batch_stats_in_eval(true);
  for (auto* p : ode.block().params()) {
    p->value = ofx::dequantize(ofx::quantize(p->value, 20));
  }

  OdeBlockAccelerator accel({.channels = 4, .extent = 5, .parallelism = 4});
  accel.load_weights(ode.block());

  Tensor z0 = random_tensor({1, 4, 5, 5}, rng);
  Tensor want = ode.forward(z0);
  AcceleratorReport report;
  Tensor got = accel.solve_euler(z0, 2, 1.0f, &report);

  for (std::size_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 5e-2f) << "at " << i;
  }
  EXPECT_EQ(report.executions, 2);
  EXPECT_GT(report.seconds(), 0.0);
}

TEST(Accelerator, Layer32CyclesAndTransfersMatchTable5) {
  // rODENet-3 offload geometry at conv_x16: 1.6435 Mcycles compute + 8192
  // transfer cycles = 16.52 ms per execution at 100 MHz.
  OdeBlockAccelerator accel({.channels = 64, .extent = 8, .parallelism = 16});
  const auto c = accel.cycles_per_execution();
  EXPECT_EQ(c.conv1, 4u * 36864u * 5u);
  EXPECT_EQ(c.total(), 2 * ConvEngine::conv_cycles(64, 64, 8, 16) +
                           2 * BnEngine::bn_cycles(64, 8));
  EXPECT_EQ(accel.transfer_cycles_per_execution(), 8192u);
  // 24 executions (rODENet-3-56) -> ~0.40 s, the paper's Table-5 cell.
  AcceleratorReport r;
  r.per_execution = c;
  r.transfer_cycles_per_execution = accel.transfer_cycles_per_execution();
  r.executions = 24;
  r.clock_mhz = 100.0;
  EXPECT_NEAR(r.seconds(), 0.40, 0.01);
}

TEST(Accelerator, LoadRejectsGeometryMismatch) {
  ou::Rng rng(7);
  odenet::core::BuildingBlock block({.in_channels = 8, .out_channels = 8,
                                     .stride = 1});
  odenet::core::init_block(block, rng);
  OdeBlockAccelerator accel({.channels = 4, .extent = 6, .parallelism = 2});
  EXPECT_THROW(accel.load_weights(block), odenet::Error);
  // eval before load_weights:
  EXPECT_THROW(accel.eval_branch(Tensor({1, 4, 6, 6}), 0.0f), odenet::Error);
}

TEST(Accelerator, BramPlanShrinksWithNarrowWeights) {
  OdeBlockAccelerator q20({.channels = 64, .extent = 8, .parallelism = 16,
                           .frac_bits = 20});
  OdeBlockAccelerator q8({.channels = 64, .extent = 8, .parallelism = 16,
                          .frac_bits = 8});
  EXPECT_LT(q8.bram().bram36_used(), q20.bram().bram36_used());
}
