// Continuous training and serving in one process — the edge-domain-
// adaptation loop the hot-swap machinery exists for: a Trainer improves
// the model on the PS while an InferenceEngine keeps serving traffic, and
// every published epoch snapshot is pushed into the live engine with
// reload() — no restart, no drain, no dropped request. A client thread
// hammers the engine the whole time and tracks which model version served
// each reply.
//
//   ./train_while_serving --epochs=4 --snapshot-every=1
#include <atomic>
#include <cstdio>
#include <thread>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/network.hpp"
#include "runtime/engine.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace odenet;

int main(int argc, char** argv) {
  util::CliParser cli("train_while_serving",
                      "Train on one thread while an inference engine "
                      "serves and hot-swaps every published snapshot");
  cli.add_option("epochs", "4", "training epochs");
  cli.add_option("snapshot-every", "1", "publish every k epochs");
  cli.add_option("width", "6", "base channel count (paper: 16)");
  cli.add_option("input", "16", "input resolution (paper: 32)");
  cli.add_option("classes", "5", "number of classes (paper: 100)");
  if (!cli.parse(argc, argv)) return 0;

  models::WidthConfig width{.input_channels = 3,
                            .input_size = cli.get_int("input"),
                            .base_channels = cli.get_int("width"),
                            .num_classes = cli.get_int("classes")};

  data::SyntheticConfig dcfg;
  dcfg.num_classes = width.num_classes;
  dcfg.images_per_class = 16;
  dcfg.height = width.input_size;
  dcfg.width = width.input_size;
  auto pair = data::make_synthetic_pair(dcfg, 6);
  const auto stats = data::compute_channel_stats(pair.train);
  data::DataLoaderConfig loader_cfg{.batch_size = 16,
                                    .shuffle = true,
                                    .augment = false,
                                    .mean = stats.mean,
                                    .stddev = stats.stddev};
  data::DataLoader train_loader(pair.train, loader_cfg);
  data::DataLoaderConfig test_cfg = loader_cfg;
  test_cfg.shuffle = false;
  data::DataLoader test_loader(pair.test, test_cfg);

  models::Network net(
      models::make_spec(models::Arch::kROdeNet3, 14, width));
  util::Rng rng(1);
  net.init(rng);

  // The serving side starts on the untrained epoch-0 weights.
  runtime::EngineConfig ecfg;
  ecfg.max_batch = 4;
  ecfg.max_delay = std::chrono::microseconds(1000);
  runtime::InferenceEngine engine(net, ecfg);
  std::printf("serving %s, initial model version %llu\n", net.name().c_str(),
              static_cast<unsigned long long>(engine.model_version()));

  // Client: submit forever until told to stop, counting replies per model
  // version (InferenceResult carries logits; the version is the engine's).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::thread client([&] {
    util::Rng crng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      core::Tensor image({3, width.input_size, width.input_size});
      for (std::size_t i = 0; i < image.numel(); ++i) {
        image.data()[i] = static_cast<float>(crng.normal(0.0, 0.5));
      }
      (void)engine.submit(std::move(image)).get();
      served.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Trainer: every published snapshot goes straight into the live engine.
  train::TrainerConfig tcfg;
  tcfg.epochs = cli.get_int("epochs");
  tcfg.sgd.learning_rate = 0.05;
  tcfg.sgd.momentum = 0.9;
  tcfg.snapshot_every = cli.get_int("snapshot-every");
  tcfg.on_snapshot = [&engine, &served](models::ModelSnapshot::Ptr snap) {
    const std::uint64_t version = engine.reload(snap);
    std::printf("  -> hot-swapped to version %llu (%llu requests served "
                "so far, zero downtime)\n",
                static_cast<unsigned long long>(version),
                static_cast<unsigned long long>(served.load()));
  };
  tcfg.on_epoch = [](const train::EpochStats& e) {
    std::printf("  epoch %d  loss %.4f  train %.1f%%  test %.1f%%%s\n",
                e.epoch, e.train_loss, 100.0 * e.train_accuracy,
                100.0 * e.test_accuracy,
                e.model_version != 0 ? "  [published]" : "");
  };
  train::Trainer trainer(net, tcfg);
  trainer.fit(train_loader, test_loader);

  stop.store(true);
  client.join();
  engine.shutdown();

  const auto estats = engine.stats();
  std::printf("served %llu requests across %llu model versions "
              "(%llu reloads, %llu worker re-syncs, mean re-sync %.3f ms); "
              "final version %llu\n",
              static_cast<unsigned long long>(estats.requests()),
              static_cast<unsigned long long>(estats.reloads + 1),
              static_cast<unsigned long long>(estats.reloads),
              static_cast<unsigned long long>(estats.swaps()),
              estats.backends[0].mean_swap_seconds() * 1e3,
              static_cast<unsigned long long>(estats.model_version));
  return 0;
}
