// Quickstart: build an rODENet-3-20 (the paper's recommended variant),
// run a prediction on a synthetic CIFAR-100-like image, and print where
// the compute goes under the paper's PS/PL split.
//
//   ./quickstart [--arch=rodenet3] [--n=20]
#include <cstdio>

#include "data/synthetic.hpp"
#include "models/network.hpp"
#include "models/param_count.hpp"
#include "sched/latency_model.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace odenet;

namespace {

models::Arch parse_arch(const std::string& name) {
  for (models::Arch a : models::all_archs()) {
    std::string lower = models::arch_name(a);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    std::string key;
    for (char c : lower) {
      if (c != '-' && c != '+') key.push_back(c);
    }
    if (key == name) return a;
  }
  throw odenet::Error("unknown architecture: " + name +
                      " (try resnet, odenet, rodenet1, rodenet2, rodenet12, "
                      "rodenet3, hybrid3)");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("quickstart",
                      "Build an ODENet variant, classify one image, and "
                      "show the PS/PL latency split");
  cli.add_option("arch", "rodenet3", "architecture (e.g. rodenet3, resnet)");
  cli.add_option("n", "20", "network depth N (20, 32, 44, 56)");
  if (!cli.parse(argc, argv)) return 0;

  const models::Arch arch = parse_arch(cli.get("arch"));
  const int n = cli.get_int("n");

  // 1. Build the network (paper geometry: 3x32x32 inputs, 100 classes).
  models::NetworkSpec spec = models::make_spec(arch, n);
  models::Network net(spec);
  util::Rng rng(42);
  net.init(rng);
  std::printf("network: %s — %zu parameters (%.2f kB as float32)\n",
              net.name().c_str(), net.param_count(),
              models::network_param_kb(spec));

  // 2. One synthetic CIFAR-100-like image through the network.
  data::SyntheticConfig dcfg;
  dcfg.num_classes = 100;
  dcfg.images_per_class = 1;
  data::Dataset ds = data::make_synthetic(dcfg);
  core::Tensor x({1, 3, 32, 32});
  const auto img = ds.image(0);
  for (std::size_t i = 0; i < img.numel(); ++i) x.data()[i] = img.data()[i];

  const auto pred = net.predict(x);
  std::printf("predicted class for sample 0 (untrained weights): %d\n",
              pred[0]);

  // 3. Table-4 structure of this variant.
  std::printf("\nstage structure (stacked blocks / executions per block):\n");
  for (const auto& s : spec.stages) {
    std::printf("  %-9s %s%s\n", models::stage_name(s.id).c_str(),
                models::table4_cell(spec, s.id).c_str(),
                s.is_ode() ? "   <- ODEBlock (weight-shared)" : "");
  }

  // 4. The paper's offload: heavily-used stage to the PL at conv_x16.
  sched::LatencyModel latency;
  sched::Partition part;
  for (const auto& s : spec.stages) {
    if (s.is_ode() && s.stride == 1) part.offloaded.insert(s.id);
  }
  if (part.offloaded.empty()) {
    std::printf("\n%s has no single-instance ODE stage to offload; "
                "running fully on the PS.\n",
                net.name().c_str());
    auto row = latency.evaluate(spec, sched::Partition::none());
    std::printf("modelled software latency: %.3f s/image\n",
                row.total_without_pl);
    return 0;
  }
  // Offloading everything may exceed the device; keep the heaviest stage.
  if (part.offloaded.size() > 1) {
    part.offloaded = {*part.offloaded.rbegin()};
  }
  auto row = latency.evaluate(spec, part);
  std::printf("\nmodelled latency on PYNQ-Z2 (PS @650 MHz, PL @100 MHz, "
              "conv_x16):\n");
  std::printf("  pure software:       %.3f s/image\n", row.total_without_pl);
  std::printf("  with %-9s on PL: %.3f s/image (%.2fx speedup)\n",
              row.offload_target.c_str(), row.total_with_pl,
              row.overall_speedup);
  return 0;
}
