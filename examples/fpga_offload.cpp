// Simulate the paper's FPGA offload end to end: quantize an rODENet-3
// ODEBlock to Q20, run it on the cycle-accurate PL simulator, compare the
// output against the float software path, and report latency + resources.
//
//   ./fpga_offload --n=56 --parallelism=16
#include <cstdio>

#include "fpga/accelerator.hpp"
#include "fpga/resource_model.hpp"
#include "models/network.hpp"
#include "sched/latency_model.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace odenet;

int main(int argc, char** argv) {
  util::CliParser cli("fpga_offload",
                      "Offload rODENet-3's layer3_2 to the simulated PL and "
                      "compare against software");
  cli.add_option("n", "56", "depth N");
  cli.add_option("parallelism", "16", "MAC units (conv_xn)");
  cli.add_option("frac-bits", "20", "fixed-point fractional bits");
  if (!cli.parse(argc, argv)) return 0;

  const int n = cli.get_int("n");
  const int par = cli.get_int("parallelism");
  const int frac = cli.get_int("frac-bits");

  models::NetworkSpec spec = models::make_spec(models::Arch::kROdeNet3, n);
  models::Network net(spec);
  util::Rng rng(7);
  net.init(rng);

  auto* stage = net.stage(models::StageId::kLayer3_2);
  auto* ode = stage->ode();
  // The PL BN computes statistics on the fly; match on the software side.
  ode->block().bn1().set_use_batch_stats_in_eval(true);
  ode->block().bn2().set_use_batch_stats_in_eval(true);

  const auto& s = stage->spec();
  std::printf("offload target: layer3_2 — %d executions of one %dch %dx%d "
              "ODEBlock (Euler, h=1)\n",
              s.executions, s.out_channels, s.in_size, s.in_size);

  // Random feature map standing in for layer3_1's output.
  core::Tensor z0({1, s.out_channels, s.in_size, s.in_size});
  for (std::size_t i = 0; i < z0.numel(); ++i) {
    z0.data()[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }

  // Software (float) solve.
  net.set_training(false);
  core::Tensor sw = ode->forward(z0);

  // Simulated PL solve (fixed point).
  fpga::OdeBlockAccelerator accel({.channels = s.out_channels,
                                   .extent = s.in_size,
                                   .parallelism = par,
                                   .frac_bits = frac});
  accel.load_weights(ode->block());
  fpga::AcceleratorReport report;
  core::Tensor hw = accel.solve_euler(z0, s.executions, 1.0f, &report);

  double max_err = 0.0, mean_err = 0.0;
  for (std::size_t i = 0; i < sw.numel(); ++i) {
    const double e = std::abs(static_cast<double>(hw.data()[i]) - sw.data()[i]);
    max_err = std::max(max_err, e);
    mean_err += e;
  }
  mean_err /= static_cast<double>(sw.numel());

  std::printf("\nfunctional check (float software vs Q%d PL):\n", frac);
  std::printf("  max |err|  = %.3e\n", max_err);
  std::printf("  mean |err| = %.3e\n", mean_err);

  const auto& c = report.per_execution;
  std::printf("\nPL cycle breakdown per block execution (conv_x%d):\n", par);
  std::printf("  conv1 %10llu cycles\n", static_cast<unsigned long long>(c.conv1));
  std::printf("  bn1   %10llu cycles (ReLU fused)\n",
              static_cast<unsigned long long>(c.bn1));
  std::printf("  conv2 %10llu cycles\n", static_cast<unsigned long long>(c.conv2));
  std::printf("  bn2   %10llu cycles (Euler add fused)\n",
              static_cast<unsigned long long>(c.bn2));
  std::printf("  AXI   %10llu cycles (fmap in + out)\n",
              static_cast<unsigned long long>(report.transfer_cycles_per_execution));
  std::printf("  => %.3f ms/execution, %.3f s for all %d executions\n",
              1e3 * (c.total() + report.transfer_cycles_per_execution) /
                  (report.clock_mhz * 1e6),
              report.seconds(), report.executions);

  fpga::ResourceModel resources;
  auto r = resources.report(models::StageId::kLayer3_2, par, 100.0,
                            frac >= 16 ? 32 : 16);
  std::printf("\nresource utilization on XC7Z020 (%s):\n",
              r.from_paper_table ? "published synthesis point"
                                 : "structural estimate");
  std::printf("  BRAM %3d (%.2f%%)%s\n", r.usage.bram36, r.bram_pct,
              r.bram_saturated ? "  <- saturated, as the paper reports" : "");
  std::printf("  DSP  %3d (%.2f%%)\n", r.usage.dsp, r.dsp_pct);
  std::printf("  LUT  %5d (%.2f%%)\n", r.usage.lut, r.lut_pct);
  std::printf("  FF   %5d (%.2f%%)\n", r.usage.ff, r.ff_pct);
  if (!r.timing_met) {
    std::printf("  !! conv_x%d fails 100 MHz timing closure (paper §3.1)\n",
                par);
  }

  sched::LatencyModel latency;
  auto row = latency.evaluate(
      spec, sched::Partition::single(models::StageId::kLayer3_2, par));
  std::printf("\nend-to-end prediction latency (Table-5 model):\n");
  std::printf("  software only : %.3f s/image\n", row.total_without_pl);
  std::printf("  with PL       : %.3f s/image  (%.2fx overall speedup)\n",
              row.total_with_pl, row.overall_speedup);
  return 0;
}
