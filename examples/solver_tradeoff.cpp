// Solver order vs cost on a trained ODEBlock: Euler (the paper's on-device
// choice), Heun, RK4 and adaptive Dopri5 — the experiment the paper lists
// as future work ("further experiments using more accurate ODE solvers").
//
//   ./solver_tradeoff --epochs=4
#include <cstdio>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/network.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace odenet;

int main(int argc, char** argv) {
  util::CliParser cli("solver_tradeoff",
                      "Accuracy and dynamics-evaluation cost per ODE solver");
  cli.add_option("epochs", "4", "training epochs");
  if (!cli.parse(argc, argv)) return 0;

  models::WidthConfig width{.input_channels = 3, .input_size = 16,
                            .base_channels = 6, .num_classes = 6};
  data::SyntheticConfig dcfg;
  dcfg.num_classes = width.num_classes;
  dcfg.images_per_class = 24;
  dcfg.height = width.input_size;
  dcfg.width = width.input_size;
  dcfg.noise_std = 0.10;
  auto pair = data::make_synthetic_pair(dcfg, 10);

  // Train once with the robust discrete-Euler configuration...
  models::Network net(models::make_spec(models::Arch::kROdeNet3, 14, width));
  util::Rng rng(5);
  net.init(rng);
  data::DataLoader train_loader(pair.train, {.batch_size = 24,
                                             .shuffle = true});
  data::DataLoader test_loader(pair.test, {.batch_size = 24,
                                           .shuffle = false});
  train::TrainerConfig tcfg;
  tcfg.epochs = cli.get_int("epochs");
  tcfg.sgd.learning_rate = 0.05;
  tcfg.schedule = {.base_lr = 0.05, .milestones = {}, .factor = 1.0};
  train::Trainer trainer(net, tcfg);
  trainer.fit(train_loader, test_loader);

  // ...then evaluate the same weights under different inference solvers.
  // (The paper: "different ODE solvers can be used in prediction and
  // training processes.")
  util::TableWriter table(
      {"solver", "steps", "f evals", "test acc", "rel. inference cost"});
  auto* ode = net.stage(models::StageId::kLayer3_2)->ode();
  const int m = ode->config().executions;

  struct Row {
    solver::Method method;
    models::TimeSpan span;
  };
  const Row rows[] = {
      {solver::Method::kEuler, models::TimeSpan::kResNetCompatible},
      {solver::Method::kHeun, models::TimeSpan::kResNetCompatible},
      {solver::Method::kRk4, models::TimeSpan::kResNetCompatible},
      {solver::Method::kDopri5, models::TimeSpan::kResNetCompatible},
  };

  for (const auto& row : rows) {
    // Rebuild the network around the same weights with a new solver config.
    models::SolverConfig scfg;
    scfg.method = row.method;
    scfg.time_span = row.span;
    models::Network eval_net(models::make_spec(models::Arch::kROdeNet3, 14,
                                               width),
                             scfg);
    // Weight transfer via the checkpoint round trip.
    std::stringstream ss;
    net.save_weights(ss);
    eval_net.load_weights(ss);

    eval_net.set_training(false);
    train::RunningMean acc;
    test_loader.reset();
    int evals = 0;
    while (test_loader.has_next()) {
      auto batch = test_loader.next();
      core::Tensor logits = eval_net.forward(batch.images);
      acc.add(train::top1_accuracy(logits, batch.labels),
              static_cast<std::size_t>(batch.size()));
      evals = eval_net.stage(models::StageId::kLayer3_2)
                  ->ode()
                  ->last_stats()
                  .function_evals;
    }
    table.add_row({solver::method_name(row.method),
                   row.method == solver::Method::kDopri5
                       ? "adaptive"
                       : std::to_string(m),
                   std::to_string(evals),
                   util::TableWriter::fmt_percent(acc.mean(), 1),
                   util::TableWriter::fmt(
                       static_cast<double>(evals) /
                           static_cast<double>(m), 2) + "x"});
  }

  std::printf("\nrODENet-3-14 trained with Euler, evaluated with each "
              "solver:\n\n%s\n",
              table.to_string().c_str());
  std::printf("Euler is the paper's on-device choice: cheapest per step "
              "and exactly one block execution per step (h = 1).\n");
  return 0;
}
