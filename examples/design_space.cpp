// Design-space exploration: enumerate every PS/PL partition and MAC
// parallelism for each architecture, filter by XC7Z020 resources and
// timing, rank by modeled latency — generalizing the paper's four
// hand-picked offload cases.
//
//   ./design_space --arch=odenet --n=56
#include <cstdio>

#include "sched/explorer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace odenet;

namespace {
models::Arch parse_arch(const std::string& name) {
  for (models::Arch a : models::all_archs()) {
    std::string key;
    for (char c : models::arch_name(a)) {
      if (c != '-' && c != '+') key.push_back(static_cast<char>(std::tolower(c)));
    }
    if (key == name) return a;
  }
  throw odenet::Error("unknown architecture: " + name);
}

std::string partition_str(const sched::Partition& p) {
  if (p.offloaded.empty()) return "(none)";
  std::string out;
  for (auto id : p.offloaded) {
    if (!out.empty()) out += "+";
    out += models::stage_name(id);
  }
  return out + " @x" + std::to_string(p.parallelism);
}
}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("design_space",
                      "Enumerate PS/PL partitions under XC7Z020 resources");
  cli.add_option("arch", "odenet", "architecture");
  cli.add_option("n", "56", "depth N");
  if (!cli.parse(argc, argv)) return 0;

  const auto spec = models::make_spec(parse_arch(cli.get("arch")),
                                      cli.get_int("n"));
  sched::LatencyModel model;
  fpga::ResourceModel resources;
  sched::PartitionExplorer explorer(model, resources);

  auto candidates = explorer.enumerate(spec);
  util::TableWriter table({"partition", "fits", "BRAM", "DSP", "latency [s]",
                           "speedup"});
  for (const auto& c : candidates) {
    table.add_row({partition_str(c.partition), c.fits ? "yes" : "NO",
                   std::to_string(c.resources.bram36),
                   std::to_string(c.resources.dsp),
                   util::TableWriter::fmt(c.row.total_with_pl, 3),
                   util::TableWriter::fmt(c.row.overall_speedup, 2) + "x"});
  }
  std::printf("%s-%d design space (%zu candidates):\n\n%s\n",
              models::arch_name(spec.arch).c_str(), spec.n, candidates.size(),
              table.to_string().c_str());

  auto best = explorer.best(spec);
  std::printf("best feasible partition: %s — %.3f s/image (%.2fx)\n",
              partition_str(best.partition).c_str(), best.row.total_with_pl,
              best.row.overall_speedup);
  return 0;
}
