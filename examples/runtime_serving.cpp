// Serving demo: one InferenceEngine fronting two backends — float software
// (the PS path) and the simulated PL accelerator — with dynamic
// micro-batching and futures.
//
//   ./runtime_serving [--requests 24] [--max-batch 8] [--delay-us 2000]
//
// Requests alternate between the backends; the engine batches each
// backend's queue independently, and the final stats line folds the
// simulated PL cycle counts into the serving report.
#include <cstdio>
#include <vector>

#include "runtime/engine.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace odenet;

int main(int argc, char** argv) {
  util::CliParser cli("runtime_serving",
                      "Batched async inference over float + FPGA backends");
  cli.add_option("requests", "24", "number of single-image requests");
  cli.add_option("max-batch", "8", "micro-batch flush size");
  cli.add_option("delay-us", "2000", "micro-batch flush deadline (us)");
  if (!cli.parse(argc, argv)) return 0;

  const int kRequests = cli.get_int("requests");

  // A small rODENet-3 (paper Table 4) so the demo runs in milliseconds.
  models::WidthConfig width{.input_channels = 3, .input_size = 16,
                            .base_channels = 8, .num_classes = 10};
  models::Network net(models::make_spec(models::Arch::kROdeNet3, 14, width));
  util::Rng rng(7);
  net.init(rng);

  runtime::EngineConfig cfg;
  cfg.max_batch = cli.get_int("max-batch");
  cfg.max_delay = std::chrono::microseconds(cli.get_int("delay-us"));
  runtime::BackendConfig ps;
  ps.backend = core::ExecBackend::kFloat;
  runtime::BackendConfig pl;
  pl.backend = core::ExecBackend::kFpgaSim;  // offloads layer3_2 (the ODE stage)
  cfg.backends = {ps, pl};
  runtime::InferenceEngine engine(net, cfg);

  std::printf("=== %s serving on %zu backends (max_batch=%d) ===\n",
              net.name().c_str(), engine.backend_count(), cfg.max_batch);

  std::vector<std::future<runtime::InferenceResult>> futures;
  std::vector<std::size_t> routed;
  futures.reserve(static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    core::Tensor image({3, width.input_size, width.input_size});
    for (std::size_t j = 0; j < image.numel(); ++j) {
      image.data()[j] = static_cast<float>(rng.normal(0.0, 0.5));
    }
    const std::size_t backend = static_cast<std::size_t>(i) % 2;
    futures.push_back(engine.submit(std::move(image), backend));
    routed.push_back(backend);
  }

  for (int i = 0; i < kRequests; ++i) {
    const runtime::InferenceResult r =
        futures[static_cast<std::size_t>(i)].get();
    std::printf("req %2d  backend=%-8s class=%d batch=%d queue=%6.2fms "
                "latency=%6.2fms pl_cycles=%llu\n",
                i, engine.backend_label(routed[static_cast<std::size_t>(i)])
                       .c_str(),
                r.predicted, r.batch_size, r.queue_seconds * 1e3,
                r.total_seconds * 1e3,
                static_cast<unsigned long long>(r.pl_cycles));
  }

  engine.shutdown();
  const runtime::EngineStats stats = engine.stats();
  std::printf("\n%s\n", stats.to_json().c_str());
  return 0;
}
