// Serving demo: one InferenceEngine fronting two backends — float software
// (the PS path) and the simulated PL accelerator — with routed dispatch,
// priority classes, deadlines, dynamic micro-batching and futures.
//
//   ./runtime_serving [--requests 24] [--max-batch 8] [--delay-us 2000]
//                     [--policy least_depth]
//
// Requests are routed by the configured policy (static, round_robin,
// least_depth, modeled_latency); priorities cycle low/normal/high, one
// request carries an intentionally hopeless deadline to show the timeout
// path, and the final stats line folds routing counters, per-priority
// latency histograms and the simulated PL cycle counts into the serving
// report.
#include <cstdio>
#include <vector>

#include "runtime/engine.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace odenet;

int main(int argc, char** argv) {
  util::CliParser cli("runtime_serving",
                      "Batched async inference over float + FPGA backends");
  cli.add_option("requests", "24", "number of single-image requests");
  cli.add_option("max-batch", "8", "micro-batch flush size");
  cli.add_option("delay-us", "2000", "micro-batch flush deadline (us)");
  cli.add_option("policy", "least_depth",
                 "routing policy: static | round_robin | least_depth | "
                 "modeled_latency");
  if (!cli.parse(argc, argv)) return 0;

  const int kRequests = cli.get_int("requests");

  // A small rODENet-3 (paper Table 4) so the demo runs in milliseconds.
  models::WidthConfig width{.input_channels = 3, .input_size = 16,
                            .base_channels = 8, .num_classes = 10};
  models::Network net(models::make_spec(models::Arch::kROdeNet3, 14, width));
  util::Rng rng(7);
  net.init(rng);

  runtime::EngineConfig cfg;
  cfg.max_batch = cli.get_int("max-batch");
  cfg.max_delay = std::chrono::microseconds(cli.get_int("delay-us"));
  cfg.route_policy = runtime::route_policy_from_name(cli.get("policy"));
  runtime::BackendConfig ps;
  ps.backend = core::ExecBackend::kFloat;
  runtime::BackendConfig pl;
  pl.backend = core::ExecBackend::kFpgaSim;  // offloads layer3_2 (the ODE stage)
  cfg.backends = {ps, pl};
  runtime::InferenceEngine engine(net, cfg);

  std::printf("=== %s serving on %zu backends (max_batch=%d, policy=%s) ===\n",
              net.name().c_str(), engine.backend_count(), cfg.max_batch,
              runtime::route_policy_name(cfg.route_policy).c_str());

  std::vector<std::future<runtime::InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    core::Tensor image({3, width.input_size, width.input_size});
    for (std::size_t j = 0; j < image.numel(); ++j) {
      image.data()[j] = static_cast<float>(rng.normal(0.0, 0.5));
    }
    runtime::SubmitOptions opts;  // backend left to the router
    opts.priority = static_cast<runtime::Priority>(i % 3);
    if (i == kRequests / 2) {
      // One hopeless deadline to demonstrate rejection: it expires long
      // before the flush timer can form a batch.
      opts.deadline = std::chrono::microseconds(1);
    }
    futures.push_back(engine.submit(std::move(image), opts));
  }

  for (int i = 0; i < kRequests; ++i) {
    try {
      const runtime::InferenceResult r =
          futures[static_cast<std::size_t>(i)].get();
      std::printf("req %2d  %-8s backend=%-8s class=%d batch=%d "
                  "queue=%6.2fms latency=%6.2fms pl_cycles=%llu\n",
                  i, runtime::priority_name(r.priority).c_str(),
                  engine.backend_label(r.backend_index).c_str(), r.predicted,
                  r.batch_size, r.queue_seconds * 1e3, r.total_seconds * 1e3,
                  static_cast<unsigned long long>(r.pl_cycles));
    } catch (const runtime::DeadlineExceeded& e) {
      std::printf("req %2d  REJECTED: %s\n", i, e.what());
    }
  }

  engine.shutdown();
  const runtime::EngineStats stats = engine.stats();
  std::printf("\n%s\n", stats.to_json().c_str());
  return 0;
}
