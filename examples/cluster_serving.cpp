// Sharded cluster serving end to end: bring up N engine shards behind
// the consistent-hash cluster router, start the TCP front-end, and push
// a small multi-tenant workload through a real socket — requests are
// placed on each tenant's home shard, overflow spills to the
// cheapest sibling, and the per-shard ledger shows where everything
// landed. Cordons one shard mid-run to show live failover.
//
//   ./cluster_serving --shards=3 --requests=48 --tenants=12
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/frontend.hpp"
#include "models/network.hpp"
#include "models/snapshot.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace odenet;

int main(int argc, char** argv) {
  util::CliParser cli("cluster_serving",
                      "Serve a multi-tenant workload across engine shards "
                      "through the socket front-end");
  cli.add_option("shards", "3", "engine shards in the cluster");
  cli.add_option("requests", "48", "requests to push through the socket");
  cli.add_option("tenants", "12", "distinct tenants (placement keys)");
  if (!cli.parse(argc, argv)) return 0;

  const int n_shards = cli.get_int("shards");
  const int n_requests = cli.get_int("requests");
  const int n_tenants = cli.get_int("tenants");

  // Small network so the example runs in moments; every shard serves the
  // same published snapshot (a real deployment may mix versions).
  models::WidthConfig width{.input_channels = 3, .input_size = 16,
                            .base_channels = 4, .num_classes = 10};
  models::Network net(models::make_spec(models::Arch::kROdeNet3, 14, width));
  util::Rng rng(1);
  net.init(rng);
  auto snapshot = models::ModelSnapshot::capture(net);

  std::vector<cluster::ShardSpec> shards;
  for (int i = 0; i < n_shards; ++i) {
    cluster::ShardSpec spec;
    spec.snapshot = snapshot;
    spec.engine.max_batch = 8;
    shards.push_back(std::move(spec));
  }
  cluster::EngineCluster cluster(std::move(shards));

  std::printf("placement (consistent hash, %d virtual nodes per shard):\n",
              cluster.config().virtual_nodes);
  for (int t = 0; t < n_tenants; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    std::printf("  %-10s -> %s\n", tenant.c_str(),
                cluster.shard_name(cluster.primary_shard(tenant)).c_str());
  }

  cluster::SocketFrontend frontend(cluster);
  frontend.start();
  std::printf("\nfront-end listening on 127.0.0.1:%u\n", frontend.port());

  cluster::FrontendClient client("127.0.0.1", frontend.port());
  int ok = 0, shed = 0;
  std::vector<std::uint64_t> by_shard(static_cast<std::size_t>(n_shards), 0);
  for (int i = 0; i < n_requests; ++i) {
    // Cordon the last shard halfway through: its tenants fail over to
    // ring successors with no client-visible change.
    if (i == n_requests / 2 && n_shards > 1) {
      cluster.set_admitting(static_cast<std::size_t>(n_shards - 1), false);
      std::printf("\n-- cordoned %s mid-run --\n",
                  cluster.shard_name(static_cast<std::size_t>(n_shards - 1))
                      .c_str());
    }
    cluster::WireRequest req;
    req.id = static_cast<std::uint64_t>(i);
    req.tenant = "tenant-" + std::to_string(i % n_tenants);
    req.channels = 3;
    req.height = req.width = static_cast<std::uint16_t>(width.input_size);
    req.pixels.resize(static_cast<std::size_t>(3) * width.input_size *
                      width.input_size);
    for (float& p : req.pixels) {
      p = static_cast<float>(rng.normal(0.0, 0.5));
    }
    client.send(req);
    const cluster::WireResponse res = client.recv();
    if (res.status == cluster::ResponseStatus::kOk) {
      ok += 1;
      if (res.shard < by_shard.size()) by_shard[res.shard] += 1;
    } else {
      shed += 1;
    }
  }

  std::printf("\n%d ok, %d shed\n", ok, shed);
  const cluster::ClusterStats stats = cluster.stats();
  for (std::size_t s = 0; s < stats.shards.size(); ++s) {
    std::printf("  %-8s served %4llu  (placed %llu home, %llu spilled in)%s\n",
                stats.shards[s].name.c_str(),
                static_cast<unsigned long long>(by_shard[s]),
                static_cast<unsigned long long>(stats.shards[s].placed),
                static_cast<unsigned long long>(stats.shards[s].spilled_in),
                cluster.admitting(s) ? "" : "  [cordoned]");
  }
  std::printf("cluster ledger: %s\n", stats.to_json().c_str());

  frontend.stop();
  cluster.shutdown();
  return 0;
}
