// Train an ODENet variant on the synthetic CIFAR-100 stand-in (or on real
// CIFAR-100 when cifar-100-binary/ is present), with the paper's optimizer
// settings scaled down to laptop sizes.
//
//   ./train_synthetic --arch=rodenet3 --n=14 --epochs=6 --width=8
#include <cstdio>

#include "data/cifar.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "models/network.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

using namespace odenet;

namespace {
models::Arch parse_arch(const std::string& name) {
  for (models::Arch a : models::all_archs()) {
    std::string key;
    for (char c : models::arch_name(a)) {
      if (c != '-' && c != '+') key.push_back(static_cast<char>(std::tolower(c)));
    }
    if (key == name) return a;
  }
  throw odenet::Error("unknown architecture: " + name);
}
}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("train_synthetic",
                      "Train an ODENet variant on synthetic (or real) "
                      "CIFAR-100 data");
  cli.add_option("arch", "rodenet3", "architecture");
  cli.add_option("n", "14", "depth N (N % 6 == 2)");
  cli.add_option("epochs", "6", "training epochs");
  cli.add_option("width", "8", "base channel count (paper: 16)");
  cli.add_option("input", "16", "input resolution (paper: 32)");
  cli.add_option("classes", "10", "number of classes (paper: 100)");
  cli.add_option("train-per-class", "24", "training images per class");
  cli.add_option("batch", "32", "batch size");
  cli.add_option("lr", "0.05", "base learning rate");
  cli.add_option("cifar-dir", "cifar-100-binary",
                 "directory with train.bin/test.bin (used when present)");
  cli.add_flag("adjoint", "train with the adjoint method (Eq. 9) instead of "
                          "discrete backprop");
  if (!cli.parse(argc, argv)) return 0;

  const models::Arch arch = parse_arch(cli.get("arch"));
  const int n = cli.get_int("n");

  models::WidthConfig width{.input_channels = 3,
                            .input_size = cli.get_int("input"),
                            .base_channels = cli.get_int("width"),
                            .num_classes = cli.get_int("classes")};

  // Prefer the real dataset when it is on disk.
  data::Dataset train_ds, test_ds;
  if (auto real = data::try_load_cifar100(cli.get("cifar-dir"))) {
    std::printf("using real CIFAR-100 from %s\n", cli.get("cifar-dir").c_str());
    width.input_size = 32;
    width.num_classes = 100;
    train_ds = std::move(real->train);
    test_ds = std::move(real->test);
  } else {
    data::SyntheticConfig dcfg;
    dcfg.num_classes = width.num_classes;
    dcfg.images_per_class = cli.get_int("train-per-class");
    dcfg.height = width.input_size;
    dcfg.width = width.input_size;
    dcfg.noise_std = 0.10;
    auto pair = data::make_synthetic_pair(dcfg, dcfg.images_per_class / 3 + 1);
    train_ds = std::move(pair.train);
    test_ds = std::move(pair.test);
    std::printf("using synthetic data: %zu train / %zu test images, %d "
                "classes\n",
                train_ds.size(), test_ds.size(), width.num_classes);
  }

  const auto stats = data::compute_channel_stats(train_ds);
  data::DataLoaderConfig train_cfg{.batch_size = cli.get_int("batch"),
                                   .shuffle = true,
                                   .augment = true,
                                   .mean = stats.mean,
                                   .stddev = stats.stddev};
  data::DataLoaderConfig test_cfg{.batch_size = cli.get_int("batch"),
                                  .shuffle = false,
                                  .augment = false,
                                  .mean = stats.mean,
                                  .stddev = stats.stddev};
  data::DataLoader train_loader(train_ds, train_cfg);
  data::DataLoader test_loader(test_ds, test_cfg);

  models::SolverConfig solver;
  if (cli.get_flag("adjoint")) {
    solver.gradient = models::GradientMode::kAdjoint;
  }
  models::Network net(models::make_spec(arch, n, width), solver);
  util::Rng rng(1);
  net.init(rng);
  std::printf("training %s (%zu params) for %d epochs [%s gradients]\n",
              net.name().c_str(), net.param_count(), cli.get_int("epochs"),
              cli.get_flag("adjoint") ? "adjoint" : "discrete");

  train::TrainerConfig tcfg;
  tcfg.epochs = cli.get_int("epochs");
  // Paper settings (SGD, L2 1e-4, step schedule) at a scaled-down LR plan.
  tcfg.sgd.learning_rate = cli.get_double("lr");
  tcfg.sgd.momentum = 0.9;
  tcfg.sgd.weight_decay = 1e-4;
  tcfg.schedule = {.base_lr = cli.get_double("lr"),
                   .milestones = {tcfg.epochs / 2, 3 * tcfg.epochs / 4},
                   .factor = 0.1};
  tcfg.on_epoch = [](const train::EpochStats& e) {
    std::printf("  epoch %2d  lr %.4f  loss %.4f  train %.1f%%  test %.1f%%  "
                "(%.1fs)\n",
                e.epoch, e.learning_rate, e.train_loss,
                100.0 * e.train_accuracy, 100.0 * e.test_accuracy, e.seconds);
  };

  train::Trainer trainer(net, tcfg);
  util::Stopwatch watch;
  auto history = trainer.fit(train_loader, test_loader);
  std::printf("done in %.1fs — final test accuracy %.1f%% (chance %.1f%%)\n",
              watch.seconds(), 100.0 * history.back().test_accuracy,
              100.0 / width.num_classes);
  return 0;
}
